package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSchedulerTiesFireInScheduleOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestSchedulerPastClampedToNow(t *testing.T) {
	s := NewScheduler(1)
	fired := VirtualTime(-1)
	s.At(100, func() {
		s.At(10, func() { fired = s.Now() }) // in the past
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", fired)
	}
}

func TestSchedulerAfterAndNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var ticks []VirtualTime
	var tick func()
	tick = func() {
		ticks = append(ticks, s.Now())
		if len(ticks) < 5 {
			s.After(time.Millisecond, tick)
		}
	}
	s.After(time.Millisecond, tick)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks", len(ticks))
	}
	for i, tk := range ticks {
		want := VirtualTime(0).Add(time.Duration(i+1) * time.Millisecond)
		if tk != want {
			t.Fatalf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.At(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop reported not pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	s := NewScheduler(1)
	var got []VirtualTime
	for _, at := range []VirtualTime{5, 15, 25} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	if err := s.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || s.Now() != 15 {
		t.Fatalf("got %v now %v", got, s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v after full run", got)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	for i := 0; i < 10; i++ {
		s.At(VirtualTime(i), func() {
			n++
			if n == 3 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("processed %d events after Stop, want 3", n)
	}
}

func TestEventBudget(t *testing.T) {
	s := NewScheduler(1)
	s.MaxEvents = 100
	var spin func()
	spin = func() { s.After(time.Microsecond, spin) }
	s.After(0, spin)
	if err := s.Run(); err != ErrEventBudget {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
	if s.Processed != 100 {
		t.Fatalf("processed %d", s.Processed)
	}
}

func TestStep(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first step n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second step n=%d", n)
	}
	if s.Step() {
		t.Fatal("step on empty queue reported an event")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := NewScheduler(seed)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			out = append(out, s.Jitter(time.Millisecond, time.Millisecond))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestJitterBounds(t *testing.T) {
	s := NewScheduler(7)
	for i := 0; i < 1000; i++ {
		d := s.Jitter(10*time.Millisecond, 5*time.Millisecond)
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("jitter %v out of [10ms,15ms)", d)
		}
	}
	if d := s.Jitter(time.Second, 0); d != time.Second {
		t.Fatalf("zero-spread jitter = %v", d)
	}
}

func TestClockModelSkewAndJitter(t *testing.T) {
	c := NewClockModel(2*time.Second, 0, 1)
	if got := c.Read(0); got != Duration(2*time.Second) {
		t.Fatalf("skew-only read = %v", got)
	}
	cj := NewClockModel(0, time.Millisecond, 1)
	for i := 0; i < 100; i++ {
		r := cj.Read(1000)
		if r < 1000 || r >= VirtualTime(1000).Add(time.Millisecond) {
			t.Fatalf("jittered read %v out of range", r)
		}
	}
	var nilClock *ClockModel
	if nilClock.Read(55) != 55 {
		t.Fatal("nil clock should be identity")
	}
	neg := NewClockModel(-time.Hour, 0, 1)
	if neg.Read(5) != 0 {
		t.Fatal("negative readings must clamp to zero")
	}
}

// Property: for any batch of scheduled times, events fire in nondecreasing
// time order and the clock ends at the max scheduled time.
func TestQuickFiringOrderMonotone(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		s := NewScheduler(3)
		var fired []VirtualTime
		var max VirtualTime
		for _, o := range offsets {
			at := VirtualTime(o)
			if at > max {
				max = at
			}
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return s.Now() == max && len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(d) never fires events scheduled after d.
func TestQuickRunUntilRespectsDeadline(t *testing.T) {
	f := func(offsets []uint16, deadline uint16) bool {
		s := NewScheduler(4)
		late := 0
		for _, o := range offsets {
			at := VirtualTime(o)
			s.At(at, func() {
				if s.Now() > VirtualTime(deadline) {
					late++
				}
			})
		}
		if err := s.RunUntil(VirtualTime(deadline)); err != nil {
			return false
		}
		return late == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeHelpers(t *testing.T) {
	a := VirtualTime(0).Add(25 * time.Second)
	b := a.Add(4 * time.Millisecond)
	if b.Sub(a) != 4*time.Millisecond {
		t.Fatalf("Sub = %v", b.Sub(a))
	}
	if a.String() != "25s" {
		t.Fatalf("String = %q", a.String())
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(VirtualTime(i), func() {})
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
