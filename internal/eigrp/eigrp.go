// Package eigrp implements a DUAL-lite distance-vector protocol in the
// style of EIGRP: per-neighbor topology tables carrying reported distances,
// the feasibility condition (a neighbor is a feasible successor only if its
// reported distance is below our current feasible distance), and composite
// link-cost metrics.
//
// EIGRP's distinguishing I/O ordering — called out explicitly in §4.1 of
// the paper — is that a router advertises a route only *after* installing
// it in the FIB: [R install P in FIB] → [R send EIGRP advertisement for P].
// The instance enforces that ordering by emitting its triggered updates
// from the FIB-flush step.
package eigrp

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/fib"
	"hbverify/internal/netsim"
	"hbverify/internal/route"
)

// Unreachable is the metric carried by poisoned updates.
const Unreachable = ^uint32(0)

// Message is a single-prefix EIGRP update carrying the sender's reported
// distance (its own cost to the prefix).
type Message struct {
	Prefix   netip.Prefix
	Reported uint32 // Unreachable poisons
}

func (m Message) String() string {
	if m.Reported == Unreachable {
		return fmt.Sprintf("EIGRP %s unreachable", m.Prefix)
	}
	return fmt.Sprintf("EIGRP %s rd=%d", m.Prefix, m.Reported)
}

// Neighbor is an EIGRP adjacency.
type Neighbor struct {
	Name      string
	Addr      netip.Addr
	LocalAddr netip.Addr
	Iface     string
	Cost      uint32 // link cost toward this neighbor
	Up        bool
}

// Env delivers messages to adjacent instances.
type Env interface {
	DeliverEIGRP(fromRouter, ifname string, msg Message, sendIO uint64)
}

// Timing controls processing delays. Advertisements fire from the FIB step,
// so only the FIB delay is configurable.
type Timing struct {
	FIBDelay time.Duration
}

// DefaultTiming installs FIB entries (and then advertises) 2ms after a
// decision.
func DefaultTiming() Timing { return Timing{FIBDelay: 2 * time.Millisecond} }

type topoEntry struct {
	reported uint32 // neighbor's reported distance
}

type selected struct {
	dist    uint32 // feasible distance
	nextHop netip.Addr
	from    string
}

// Instance is one router's EIGRP process.
type Instance struct {
	name   string
	rec    *capture.Recorder
	sched  *netsim.Scheduler
	fib    *fib.Table
	env    Env
	timing Timing

	neighbors map[netip.Addr]*Neighbor
	local     map[netip.Prefix]bool
	topo      map[netip.Prefix]map[netip.Addr]topoEntry
	sel       map[netip.Prefix]selected
	ribIO     map[netip.Prefix]uint64

	pendingFIB map[netip.Prefix][]uint64
}

// New builds an EIGRP instance.
func New(name string, rec *capture.Recorder, sched *netsim.Scheduler, fibTable *fib.Table, env Env, timing Timing) *Instance {
	return &Instance{
		name: name, rec: rec, sched: sched, fib: fibTable, env: env, timing: timing,
		neighbors:  map[netip.Addr]*Neighbor{},
		local:      map[netip.Prefix]bool{},
		topo:       map[netip.Prefix]map[netip.Addr]topoEntry{},
		sel:        map[netip.Prefix]selected{},
		ribIO:      map[netip.Prefix]uint64{},
		pendingFIB: map[netip.Prefix][]uint64{},
	}
}

// AddNeighbor registers an adjacency.
func (e *Instance) AddNeighbor(n Neighbor) *Neighbor {
	cp := n
	e.neighbors[n.Addr] = &cp
	return &cp
}

// Originate injects a locally connected prefix at distance 0.
func (e *Instance) Originate(p netip.Prefix, cause ...uint64) {
	p = p.Masked()
	e.local[p] = true
	e.runDUAL(p, cause)
}

// WithdrawLocal removes a locally originated prefix.
func (e *Instance) WithdrawLocal(p netip.Prefix, cause ...uint64) {
	p = p.Masked()
	if !e.local[p] {
		return
	}
	delete(e.local, p)
	e.runDUAL(p, cause)
}

// NeighborDown purges the neighbor's topology entries.
func (e *Instance) NeighborDown(addr netip.Addr, cause ...uint64) {
	n := e.neighbors[addr]
	if n == nil || !n.Up {
		return
	}
	n.Up = false
	var affected []netip.Prefix
	for p, byN := range e.topo {
		if _, ok := byN[addr]; ok {
			delete(byN, addr)
			affected = append(affected, p)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return lessPrefix(affected[i], affected[j]) })
	for _, p := range affected {
		e.runDUAL(p, cause)
	}
}

// NeighborUp restores the adjacency after a link recovery and schedules a
// full re-advertisement, so the revived neighbor relearns our routes. The
// advertisement honours EIGRP's FIB-before-advertise ordering by firing
// after the FIB delay.
func (e *Instance) NeighborUp(addr netip.Addr, cause ...uint64) {
	n := e.neighbors[addr]
	if n == nil || n.Up {
		return
	}
	n.Up = true
	seen := map[netip.Prefix]bool{}
	for p := range e.sel {
		seen[p] = true
	}
	for p := range e.local {
		seen[p] = true
	}
	prefixes := make([]netip.Prefix, 0, len(seen))
	for p := range seen {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return lessPrefix(prefixes[i], prefixes[j]) })
	cs := append([]uint64(nil), cause...)
	for _, p := range prefixes {
		p := p
		e.sched.After(e.timing.FIBDelay, func() { e.advertise(p, cs) })
	}
}

// HandleUpdate processes a neighbor's triggered update.
func (e *Instance) HandleUpdate(from netip.Addr, msg Message, sendIO uint64) {
	n := e.neighbors[from]
	if n == nil || !n.Up {
		return
	}
	typ := capture.RecvAdvert
	if msg.Reported == Unreachable {
		typ = capture.RecvWithdraw
	}
	recv := e.rec.Record(capture.IO{
		Type: typ, Proto: route.ProtoEIGRP, Prefix: msg.Prefix, NextHop: from,
		Peer: n.Name, PeerAddr: from, Causes: []uint64{sendIO},
	})
	p := msg.Prefix.Masked()
	if msg.Reported == Unreachable {
		if byN := e.topo[p]; byN != nil {
			delete(byN, from)
		}
	} else {
		if e.topo[p] == nil {
			e.topo[p] = map[netip.Addr]topoEntry{}
		}
		e.topo[p][from] = topoEntry{reported: msg.Reported}
	}
	e.runDUAL(p, []uint64{recv.ID})
}

// runDUAL reselects the successor for p under the feasibility condition.
func (e *Instance) runDUAL(p netip.Prefix, causes []uint64) {
	cur, have := e.sel[p]
	var best *selected
	if e.local[p] {
		best = &selected{dist: 0}
	} else {
		// Feasibility: neighbor's reported distance must be strictly below
		// our current feasible distance (when we have one).
		fd := uint32(Unreachable)
		if have {
			fd = cur.dist
		}
		addrs := make([]netip.Addr, 0, len(e.topo[p]))
		for a := range e.topo[p] {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })
		for _, a := range addrs {
			n := e.neighbors[a]
			if n == nil || !n.Up {
				continue
			}
			te := e.topo[p][a]
			if have && te.reported >= fd {
				continue // fails the feasibility condition
			}
			total := te.reported + n.Cost
			if best == nil || total < best.dist {
				best = &selected{dist: total, nextHop: a, from: n.Name}
			}
		}
		// DUAL-lite: if nothing is feasible, fall back to a full
		// recomputation ignoring the old FD (a stand-in for the
		// active/query process).
		if best == nil {
			for _, a := range addrs {
				n := e.neighbors[a]
				if n == nil || !n.Up {
					continue
				}
				te := e.topo[p][a]
				total := te.reported + n.Cost
				if best == nil || total < best.dist {
					best = &selected{dist: total, nextHop: a, from: n.Name}
				}
			}
		}
	}
	switch {
	case best == nil && have:
		delete(e.sel, p)
		delete(e.ribIO, p)
		io := e.rec.Record(capture.IO{
			Type: capture.RIBRemove, Proto: route.ProtoEIGRP, Prefix: p,
			NextHop: cur.nextHop, Causes: causes,
		})
		e.scheduleFIB(p, []uint64{io.ID})
	case best != nil && (!have || *best != cur):
		e.sel[p] = *best
		io := e.rec.Record(capture.IO{
			Type: capture.RIBInstall, Proto: route.ProtoEIGRP, Prefix: p,
			NextHop: best.nextHop, Causes: causes,
		})
		e.ribIO[p] = io.ID
		e.scheduleFIB(p, []uint64{io.ID})
	}
}

func (e *Instance) scheduleFIB(p netip.Prefix, causes []uint64) {
	if pend, ok := e.pendingFIB[p]; ok {
		e.pendingFIB[p] = append(pend, causes...)
		return
	}
	e.pendingFIB[p] = append([]uint64(nil), causes...)
	e.sched.After(e.timing.FIBDelay, func() { e.flushFIB(p) })
}

// flushFIB installs or removes the FIB entry and then — honouring EIGRP's
// FIB-before-advertise ordering — emits triggered updates whose ground-truth
// cause is the FIB event itself.
func (e *Instance) flushFIB(p netip.Prefix) {
	causes := e.pendingFIB[p]
	delete(e.pendingFIB, p)
	sel, have := e.sel[p]

	var fibIO capture.IO
	var changed bool
	if !have {
		fibIO, changed = e.fib.Withdraw(route.ProtoEIGRP, p, causes...)
	} else if sel.nextHop.IsValid() {
		fibIO, changed = e.fib.Offer(route.Route{
			Prefix: p, NextHop: sel.nextHop, Proto: route.ProtoEIGRP, Metric: sel.dist,
		}, causes...)
	} else {
		// Locally originated: connected route covers the FIB; EIGRP itself
		// installs nothing but still advertises.
		fibIO, changed = e.fib.Withdraw(route.ProtoEIGRP, p, causes...)
	}

	advCauses := causes
	if changed {
		advCauses = []uint64{fibIO.ID}
	}
	e.advertise(p, advCauses)
}

func (e *Instance) advertise(p netip.Prefix, causes []uint64) {
	sel, have := e.sel[p]
	addrs := make([]netip.Addr, 0, len(e.neighbors))
	for a := range e.neighbors {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })
	for _, a := range addrs {
		n := e.neighbors[a]
		if !n.Up {
			continue
		}
		msg := Message{Prefix: p, Reported: Unreachable}
		typ := capture.SendWithdraw
		if have && sel.from != n.Name {
			msg.Reported = sel.dist
			typ = capture.SendAdvert
		}
		io := e.rec.Record(capture.IO{
			Type: typ, Proto: route.ProtoEIGRP, Prefix: p,
			Peer: n.Name, PeerAddr: n.Addr, Causes: causes,
		})
		e.env.DeliverEIGRP(e.name, n.Iface, msg, io.ID)
	}
}

// Table returns the selected routes.
func (e *Instance) Table() map[netip.Prefix]route.Route {
	out := make(map[netip.Prefix]route.Route, len(e.sel))
	for p, s := range e.sel {
		out[p] = route.Route{Prefix: p, NextHop: s.nextHop, Proto: route.ProtoEIGRP, Metric: s.dist}
	}
	return out
}

func lessPrefix(a, b netip.Prefix) bool {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c < 0
	}
	return a.Bits() < b.Bits()
}
