package eigrp

import (
	"net/netip"
	"testing"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/fib"
	"hbverify/internal/netsim"
	"hbverify/internal/route"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s).Masked() }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

type harness struct {
	sched *netsim.Scheduler
	log   *capture.Log
	insts map[string]*Instance
	fibs  map[string]*fib.Table
	wires map[string][2]string
	addrs map[string]netip.Addr
}

func newHarness() *harness {
	return &harness{
		sched: netsim.NewScheduler(1),
		log:   capture.NewLog(),
		insts: map[string]*Instance{},
		fibs:  map[string]*fib.Table{},
		wires: map[string][2]string{},
		addrs: map[string]netip.Addr{},
	}
}

func (h *harness) DeliverEIGRP(fromRouter, ifname string, msg Message, sendIO uint64) {
	dest, ok := h.wires[fromRouter+":"+ifname]
	if !ok {
		return
	}
	from := h.addrs[fromRouter+":"+ifname]
	h.sched.After(time.Millisecond, func() {
		if inst := h.insts[dest[0]]; inst != nil {
			inst.HandleUpdate(from, msg, sendIO)
		}
	})
}

func (h *harness) addRouter(name string) *Instance {
	rec := capture.NewRecorder(h.log, name, h.sched, nil)
	ft := fib.NewTable(rec)
	inst := New(name, rec, h.sched, ft, h, DefaultTiming())
	h.insts[name] = inst
	h.fibs[name] = ft
	return inst
}

func (h *harness) wire(a, b string, n int, cost uint32) {
	aAddr := netip.AddrFrom4([4]byte{10, 0, byte(n), 1})
	bAddr := netip.AddrFrom4([4]byte{10, 0, byte(n), 2})
	ifA, ifB := "to-"+b, "to-"+a
	h.insts[a].AddNeighbor(Neighbor{Name: b, Addr: bAddr, LocalAddr: aAddr, Iface: ifA, Cost: cost, Up: true})
	h.insts[b].AddNeighbor(Neighbor{Name: a, Addr: aAddr, LocalAddr: bAddr, Iface: ifB, Cost: cost, Up: true})
	h.wires[a+":"+ifA] = [2]string{b, ifB}
	h.wires[b+":"+ifB] = [2]string{a, ifA}
	h.addrs[a+":"+ifA] = aAddr
	h.addrs[b+":"+ifB] = bAddr
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	h.sched.MaxEvents = 200000
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
}

var lan = pfx("172.16.0.0/24")

func TestPropagationAndCompositeMetric(t *testing.T) {
	h := newHarness()
	for _, n := range []string{"a", "b", "c"} {
		h.addRouter(n)
	}
	h.wire("a", "b", 1, 10)
	h.wire("b", "c", 2, 5)
	h.insts["a"].Originate(lan)
	h.run(t)
	rb := h.insts["b"].Table()[lan]
	if rb.Metric != 10 || rb.NextHop != addr("10.0.1.1") {
		t.Fatalf("b = %+v", rb)
	}
	rc := h.insts["c"].Table()[lan]
	if rc.Metric != 15 || rc.NextHop != addr("10.0.2.1") {
		t.Fatalf("c = %+v", rc)
	}
}

func TestFIBBeforeSendOrdering(t *testing.T) {
	// EIGRP's distinguishing HBR (§4.1): FIB install happens-before send.
	h := newHarness()
	for _, n := range []string{"a", "b", "c"} {
		h.addRouter(n)
	}
	h.wire("a", "b", 1, 1)
	h.wire("b", "c", 2, 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	var fibT, sendT netsim.VirtualTime
	var fibID uint64
	var sendCauses []uint64
	for _, io := range h.log.ForRouter("b") {
		if io.Prefix != lan {
			continue
		}
		switch io.Type {
		case capture.FIBInstall:
			fibT, fibID = io.TrueTime, io.ID
		case capture.SendAdvert:
			if sendT == 0 {
				sendT, sendCauses = io.TrueTime, io.Causes
			}
		}
	}
	if fibT == 0 || sendT == 0 {
		t.Fatal("missing events")
	}
	if fibT > sendT {
		t.Fatalf("FIB install must precede send: fib=%v send=%v", fibT, sendT)
	}
	if len(sendCauses) == 0 || sendCauses[0] != fibID {
		t.Fatalf("send must be ground-truth caused by FIB install: causes=%v fib=%d", sendCauses, fibID)
	}
}

func TestFeasibilityConditionPreventsLoop(t *testing.T) {
	// Triangle a-b-c. a originates. c's route via b has rd=cost(a-b)=1.
	// When b loses its link to a, b must not switch to c if c's reported
	// distance is not below b's feasible distance.
	h := newHarness()
	for _, n := range []string{"a", "b", "c"} {
		h.addRouter(n)
	}
	h.wire("a", "b", 1, 1)
	h.wire("b", "c", 2, 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	// c reports rd=2 back? No: split horizon means c never advertises to
	// b. Sanity: b's topo has only a's entry.
	h.insts["b"].NeighborDown(addr("10.0.1.1"))
	h.run(t)
	if _, ok := h.insts["b"].Table()[lan]; ok {
		t.Fatal("b kept unreachable route")
	}
	// And c learns the withdrawal.
	if _, ok := h.insts["c"].Table()[lan]; ok {
		t.Fatal("c kept unreachable route")
	}
}

func TestFallbackToFeasibleSuccessor(t *testing.T) {
	// dst has two paths to the LAN: via near (cost 1, rd 0 direct from
	// src... ) Build: src -- near -- dst and src -- far -- dst with
	// costs making near primary and far a feasible successor.
	h := newHarness()
	for _, n := range []string{"src", "near", "far", "dst"} {
		h.addRouter(n)
	}
	h.wire("src", "near", 1, 1)
	h.wire("near", "dst", 2, 1)
	h.wire("src", "far", 3, 1)
	h.wire("far", "dst", 4, 10)
	h.insts["src"].Originate(lan)
	h.run(t)
	r := h.insts["dst"].Table()[lan]
	if r.NextHop != addr("10.0.2.1") {
		t.Fatalf("primary = %+v, want via near", r)
	}
	// Fail the near path at dst.
	h.insts["dst"].NeighborDown(addr("10.0.2.1"))
	h.run(t)
	r = h.insts["dst"].Table()[lan]
	if r.NextHop != addr("10.0.4.1") {
		t.Fatalf("after failure = %+v, want via far", r)
	}
	if r.Metric != 11 {
		t.Fatalf("metric = %d, want 11", r.Metric)
	}
}

func TestWithdrawLocalPropagates(t *testing.T) {
	h := newHarness()
	for _, n := range []string{"a", "b"} {
		h.addRouter(n)
	}
	h.wire("a", "b", 1, 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	if _, ok := h.insts["b"].Table()[lan]; !ok {
		t.Fatal("b missing route")
	}
	h.insts["a"].WithdrawLocal(lan)
	h.run(t)
	if _, ok := h.insts["b"].Table()[lan]; ok {
		t.Fatal("b kept withdrawn route")
	}
	if _, ok := h.fibs["b"].Exact(lan); ok {
		t.Fatal("b FIB kept withdrawn route")
	}
}

func TestSplitHorizon(t *testing.T) {
	h := newHarness()
	h.addRouter("a")
	h.addRouter("b")
	h.wire("a", "b", 1, 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	adverts := h.log.Filter(func(io capture.IO) bool {
		return io.Router == "b" && io.Type == capture.SendAdvert && io.Prefix == lan
	})
	if len(adverts) != 0 {
		t.Fatalf("b advertised back toward its successor: %v", adverts)
	}
}

func TestLocalOriginationDoesNotSelfFIB(t *testing.T) {
	h := newHarness()
	h.addRouter("a")
	h.insts["a"].Originate(lan)
	h.run(t)
	// EIGRP installs no FIB entry for a connected prefix (the connected
	// source owns it), but the RIB entry and advert exist.
	if _, ok := h.fibs["a"].Exact(lan); ok {
		t.Fatal("EIGRP self-installed a connected prefix")
	}
	ribs := h.log.Filter(func(io capture.IO) bool {
		return io.Router == "a" && io.Type == capture.RIBInstall && io.Proto == route.ProtoEIGRP
	})
	if len(ribs) != 1 {
		t.Fatalf("ribs = %v", ribs)
	}
}

func TestUnreachablePoisonOnlyFromSuccessor(t *testing.T) {
	h := newHarness()
	for _, n := range []string{"a", "b", "x"} {
		h.addRouter(n)
	}
	h.wire("a", "b", 1, 1)
	h.wire("x", "b", 2, 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	// x poisons; b's successor is a, so the topology entry for x (none)
	// changes nothing.
	h.sched.After(time.Millisecond, func() {
		h.insts["b"].HandleUpdate(addr("10.0.2.1"), Message{Prefix: lan, Reported: Unreachable}, 0)
	})
	h.run(t)
	if _, ok := h.insts["b"].Table()[lan]; !ok {
		t.Fatal("poison from non-successor removed route")
	}
}
