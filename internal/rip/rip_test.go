package rip

import (
	"net/netip"
	"testing"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/fib"
	"hbverify/internal/netsim"
	"hbverify/internal/route"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s).Masked() }
func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }

type harness struct {
	sched *netsim.Scheduler
	log   *capture.Log
	insts map[string]*Instance
	fibs  map[string]*fib.Table
	wires map[string][2]string // "router:iface" -> (router, peerAddrString)
	addrs map[string]netip.Addr
}

func newHarness() *harness {
	return &harness{
		sched: netsim.NewScheduler(1),
		log:   capture.NewLog(),
		insts: map[string]*Instance{},
		fibs:  map[string]*fib.Table{},
		wires: map[string][2]string{},
		addrs: map[string]netip.Addr{},
	}
}

func (h *harness) DeliverRIP(fromRouter, ifname string, msg Message, sendIO uint64) {
	dest, ok := h.wires[fromRouter+":"+ifname]
	if !ok {
		return
	}
	from := h.addrs[fromRouter+":"+ifname]
	h.sched.After(time.Millisecond, func() {
		if inst := h.insts[dest[0]]; inst != nil {
			inst.HandleUpdate(from, msg, sendIO)
		}
	})
}

func (h *harness) addRouter(name string) *Instance {
	rec := capture.NewRecorder(h.log, name, h.sched, nil)
	ft := fib.NewTable(rec)
	inst := New(name, rec, h.sched, ft, h, DefaultTiming())
	h.insts[name] = inst
	h.fibs[name] = ft
	return inst
}

func (h *harness) wire(a, b string, n int) {
	aAddr := netip.AddrFrom4([4]byte{10, 0, byte(n), 1})
	bAddr := netip.AddrFrom4([4]byte{10, 0, byte(n), 2})
	ifA, ifB := "to-"+b, "to-"+a
	h.insts[a].AddNeighbor(Neighbor{Name: b, Addr: bAddr, LocalAddr: aAddr, Iface: ifA, Up: true})
	h.insts[b].AddNeighbor(Neighbor{Name: a, Addr: aAddr, LocalAddr: bAddr, Iface: ifB, Up: true})
	h.wires[a+":"+ifA] = [2]string{b, ifB}
	h.wires[b+":"+ifB] = [2]string{a, ifA}
	h.addrs[a+":"+ifA] = aAddr
	h.addrs[b+":"+ifB] = bAddr
}

func (h *harness) run(t *testing.T) {
	t.Helper()
	h.sched.MaxEvents = 200000
	if err := h.sched.Run(); err != nil {
		t.Fatal(err)
	}
}

var lan = pfx("172.16.0.0/24")

func TestPropagationAlongChain(t *testing.T) {
	h := newHarness()
	for _, n := range []string{"a", "b", "c"} {
		h.addRouter(n)
	}
	h.wire("a", "b", 1)
	h.wire("b", "c", 2)
	h.insts["a"].Originate(lan)
	h.run(t)
	rb := h.insts["b"].Table()[lan]
	if rb.Metric != 2 || rb.NextHop != addr("10.0.1.1") {
		t.Fatalf("b route = %+v", rb)
	}
	rc := h.insts["c"].Table()[lan]
	if rc.Metric != 3 || rc.NextHop != addr("10.0.2.1") {
		t.Fatalf("c route = %+v", rc)
	}
	if e, ok := h.fibs["c"].Exact(lan); !ok || e.Proto != route.ProtoRIP {
		t.Fatalf("c FIB = %+v %v", e, ok)
	}
}

func TestSplitHorizonPoisonReverse(t *testing.T) {
	h := newHarness()
	h.addRouter("a")
	h.addRouter("b")
	h.wire("a", "b", 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	// b must have sent a poison (withdraw) back toward a, not an advert.
	poisons := h.log.Filter(func(io capture.IO) bool {
		return io.Router == "b" && io.Type == capture.SendWithdraw && io.Prefix == lan
	})
	adverts := h.log.Filter(func(io capture.IO) bool {
		return io.Router == "b" && io.Type == capture.SendAdvert && io.Prefix == lan
	})
	if len(poisons) == 0 {
		t.Fatal("no poison reverse sent")
	}
	if len(adverts) != 0 {
		t.Fatalf("b advertised the route back to a: %v", adverts)
	}
	// a's own route is unaffected by the poison.
	if r, ok := h.insts["a"].Table()[lan]; !ok || r.Metric != 1 {
		t.Fatalf("a route = %+v %v", r, ok)
	}
}

func TestWithdrawLocalPropagates(t *testing.T) {
	h := newHarness()
	for _, n := range []string{"a", "b", "c"} {
		h.addRouter(n)
	}
	h.wire("a", "b", 1)
	h.wire("b", "c", 2)
	h.insts["a"].Originate(lan)
	h.run(t)
	h.insts["a"].WithdrawLocal(lan)
	h.run(t)
	for _, n := range []string{"a", "b", "c"} {
		if _, ok := h.insts[n].Table()[lan]; ok {
			t.Fatalf("%s kept withdrawn route", n)
		}
	}
	if _, ok := h.fibs["c"].Exact(lan); ok {
		t.Fatal("c FIB kept withdrawn route")
	}
}

func TestNeighborDownPurges(t *testing.T) {
	h := newHarness()
	h.addRouter("a")
	h.addRouter("b")
	h.wire("a", "b", 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	h.insts["b"].NeighborDown(addr("10.0.1.1"))
	h.run(t)
	if _, ok := h.insts["b"].Table()[lan]; ok {
		t.Fatal("b kept route after neighbor down")
	}
}

func TestBetterMetricWins(t *testing.T) {
	// Diamond: a-b-d (2 hops) and a-c-d? Simpler: d hears the LAN from b
	// (far) and from c (near).
	h := newHarness()
	for _, n := range []string{"src", "far1", "far2", "dst", "near"} {
		h.addRouter(n)
	}
	h.wire("src", "far1", 1)
	h.wire("far1", "far2", 2)
	h.wire("far2", "dst", 3)
	h.wire("src", "near", 4)
	h.wire("near", "dst", 5)
	h.insts["src"].Originate(lan)
	h.run(t)
	r := h.insts["dst"].Table()[lan]
	if r.Metric != 3 {
		t.Fatalf("dst metric = %d, want 3 (via near)", r.Metric)
	}
	if r.NextHop != addr("10.0.5.1") {
		t.Fatalf("dst next hop = %v, want near", r.NextHop)
	}
}

func TestSendBeforeFIBOrdering(t *testing.T) {
	// RIP's distinguishing trait: triggered update precedes FIB install.
	h := newHarness()
	h.addRouter("a")
	h.addRouter("b")
	h.addRouter("c")
	h.wire("a", "b", 1)
	h.wire("b", "c", 2)
	h.insts["a"].Originate(lan)
	h.run(t)
	var sendT, fibT netsim.VirtualTime
	for _, io := range h.log.ForRouter("b") {
		if io.Prefix != lan {
			continue
		}
		switch io.Type {
		case capture.SendAdvert:
			if sendT == 0 {
				sendT = io.TrueTime
			}
		case capture.FIBInstall:
			fibT = io.TrueTime
		}
	}
	if sendT == 0 || fibT == 0 {
		t.Fatal("missing send or fib event on b")
	}
	if sendT >= fibT {
		t.Fatalf("RIP must send before FIB install: send=%v fib=%v", sendT, fibT)
	}
}

func TestInfinityCapsMetric(t *testing.T) {
	h := newHarness()
	h.addRouter("a")
	h.addRouter("b")
	h.wire("a", "b", 1)
	h.run(t)
	// Deliver an update at metric 15: b computes 16 => unreachable, not
	// installed.
	h.sched.After(time.Millisecond, func() {
		h.insts["b"].HandleUpdate(addr("10.0.1.1"), Message{Prefix: lan, Metric: 15}, 0)
	})
	h.run(t)
	if _, ok := h.insts["b"].Table()[lan]; ok {
		t.Fatal("metric-16 route installed")
	}
}

func TestPoisonFromNonNextHopIgnored(t *testing.T) {
	h := newHarness()
	for _, n := range []string{"a", "b", "c"} {
		h.addRouter(n)
	}
	h.wire("a", "b", 1)
	h.wire("c", "b", 2)
	h.insts["a"].Originate(lan)
	h.run(t)
	// c (not b's next hop for lan) poisons the route; b must keep it.
	h.sched.After(time.Millisecond, func() {
		h.insts["b"].HandleUpdate(addr("10.0.2.1"), Message{Prefix: lan, Metric: Infinity}, 0)
	})
	h.run(t)
	if _, ok := h.insts["b"].Table()[lan]; !ok {
		t.Fatal("poison from non-nexthop removed the route")
	}
}

func TestUpdateFromCurrentNextHopAlwaysAccepted(t *testing.T) {
	h := newHarness()
	h.addRouter("a")
	h.addRouter("b")
	h.wire("a", "b", 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	// a's metric worsens (e.g. internal topology change): b must follow
	// even though the new metric is worse.
	h.sched.After(time.Millisecond, func() {
		h.insts["b"].HandleUpdate(addr("10.0.1.1"), Message{Prefix: lan, Metric: 5}, 0)
	})
	h.run(t)
	if r := h.insts["b"].Table()[lan]; r.Metric != 6 {
		t.Fatalf("metric = %d, want 6", r.Metric)
	}
}

func TestRecvIOCausality(t *testing.T) {
	h := newHarness()
	h.addRouter("a")
	h.addRouter("b")
	h.wire("a", "b", 1)
	h.insts["a"].Originate(lan)
	h.run(t)
	var rib capture.IO
	for _, io := range h.log.ForRouter("b") {
		if io.Type == capture.RIBInstall && io.Prefix == lan {
			rib = io
		}
	}
	if rib.ID == 0 || len(rib.Causes) == 0 {
		t.Fatalf("rib = %+v", rib)
	}
	cause, _ := h.log.ByID(rib.Causes[0])
	if cause.Type != capture.RecvAdvert || cause.Proto != route.ProtoRIP {
		t.Fatalf("cause = %+v", cause)
	}
	sendCause, _ := h.log.ByID(cause.Causes[0])
	if sendCause.Router != "a" || sendCause.Type != capture.SendAdvert {
		t.Fatalf("send cause = %+v", sendCause)
	}
}
