// Package rip implements a RIP-style distance-vector protocol: hop-count
// metric, infinity at 16, split horizon with poison reverse, and triggered
// per-prefix updates.
//
// RIP's I/O ordering differs from BGP's and EIGRP's in a way the paper's
// rule-matching strategy must capture: a RIP router sends its triggered
// update right after the RIB changes, possibly *before* the FIB install
// completes. The instance therefore uses an advertisement delay shorter
// than its FIB delay.
package rip

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/fib"
	"hbverify/internal/netsim"
	"hbverify/internal/route"
)

// Infinity is the RIP unreachable metric.
const Infinity = 16

// Message is a single-prefix triggered update.
type Message struct {
	Prefix netip.Prefix
	Metric uint32 // hop count as seen by the sender; Infinity poisons
}

func (m Message) String() string { return fmt.Sprintf("RIP %s metric=%d", m.Prefix, m.Metric) }

// Neighbor is a RIP adjacency on an interface.
type Neighbor struct {
	Name      string
	Addr      netip.Addr
	LocalAddr netip.Addr
	Iface     string
	Up        bool
}

// Env delivers messages to adjacent instances.
type Env interface {
	DeliverRIP(fromRouter, ifname string, msg Message, sendIO uint64)
}

// Timing controls processing delays. AdvertDelay < FIBDelay reproduces
// RIP's send-before-FIB behaviour.
type Timing struct {
	AdvertDelay time.Duration
	FIBDelay    time.Duration
}

// DefaultTiming sends at 1ms and installs the FIB at 3ms.
func DefaultTiming() Timing {
	return Timing{AdvertDelay: time.Millisecond, FIBDelay: 3 * time.Millisecond}
}

type entry struct {
	metric  uint32 // our cost (hops)
	nextHop netip.Addr
	from    string // neighbor name, "" for local
}

// Instance is one router's RIP process.
type Instance struct {
	name   string
	rec    *capture.Recorder
	sched  *netsim.Scheduler
	fib    *fib.Table
	env    Env
	timing Timing

	neighbors map[netip.Addr]*Neighbor
	local     map[netip.Prefix]bool
	table     map[netip.Prefix]entry
	ribIO     map[netip.Prefix]uint64

	pendingAdv map[netip.Prefix][]uint64
	pendingFIB map[netip.Prefix][]uint64
}

// New builds a RIP instance.
func New(name string, rec *capture.Recorder, sched *netsim.Scheduler, fibTable *fib.Table, env Env, timing Timing) *Instance {
	return &Instance{
		name: name, rec: rec, sched: sched, fib: fibTable, env: env, timing: timing,
		neighbors:  map[netip.Addr]*Neighbor{},
		local:      map[netip.Prefix]bool{},
		table:      map[netip.Prefix]entry{},
		ribIO:      map[netip.Prefix]uint64{},
		pendingAdv: map[netip.Prefix][]uint64{},
		pendingFIB: map[netip.Prefix][]uint64{},
	}
}

// AddNeighbor registers an adjacency.
func (r *Instance) AddNeighbor(n Neighbor) *Neighbor {
	cp := n
	r.neighbors[n.Addr] = &cp
	return &cp
}

// Originate injects a locally connected prefix at metric 1.
func (r *Instance) Originate(p netip.Prefix, cause ...uint64) {
	p = p.Masked()
	r.local[p] = true
	r.update(p, entry{metric: 1, from: ""}, cause)
}

// WithdrawLocal removes a locally originated prefix.
func (r *Instance) WithdrawLocal(p netip.Prefix, cause ...uint64) {
	p = p.Masked()
	if !r.local[p] {
		return
	}
	delete(r.local, p)
	r.remove(p, cause)
}

// NeighborDown purges routes learned from the neighbor (link failure).
func (r *Instance) NeighborDown(addr netip.Addr, cause ...uint64) {
	n := r.neighbors[addr]
	if n == nil || !n.Up {
		return
	}
	n.Up = false
	var affected []netip.Prefix
	for p, e := range r.table {
		if e.from == n.Name {
			affected = append(affected, p)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return lessPrefix(affected[i], affected[j]) })
	for _, p := range affected {
		r.remove(p, cause)
	}
}

// NeighborUp restores the adjacency after a link recovery and schedules
// triggered updates for the full table, so the revived neighbor relearns
// our routes (and, symmetrically, re-advertises its own).
func (r *Instance) NeighborUp(addr netip.Addr, cause ...uint64) {
	n := r.neighbors[addr]
	if n == nil || n.Up {
		return
	}
	n.Up = true
	var prefixes []netip.Prefix
	for p := range r.table {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return lessPrefix(prefixes[i], prefixes[j]) })
	for _, p := range prefixes {
		r.scheduleAdvert(p, cause)
	}
}

// HandleUpdate processes a triggered update from a neighbor.
func (r *Instance) HandleUpdate(from netip.Addr, msg Message, sendIO uint64) {
	n := r.neighbors[from]
	if n == nil || !n.Up {
		return
	}
	typ := capture.RecvAdvert
	if msg.Metric >= Infinity {
		typ = capture.RecvWithdraw
	}
	recv := r.rec.Record(capture.IO{
		Type: typ, Proto: route.ProtoRIP, Prefix: msg.Prefix, NextHop: from,
		Peer: n.Name, PeerAddr: from, Causes: []uint64{sendIO},
	})
	if r.local[msg.Prefix.Masked()] {
		return // our own connected prefix always wins
	}
	metric := msg.Metric + 1
	if metric > Infinity {
		metric = Infinity
	}
	cur, have := r.table[msg.Prefix.Masked()]
	switch {
	case metric >= Infinity:
		// Poison: only act if it came from our current next hop.
		if have && cur.from == n.Name {
			r.remove(msg.Prefix.Masked(), []uint64{recv.ID})
		}
	case !have || metric < cur.metric || cur.from == n.Name:
		r.update(msg.Prefix.Masked(), entry{metric: metric, nextHop: from, from: n.Name}, []uint64{recv.ID})
	}
}

func (r *Instance) update(p netip.Prefix, e entry, causes []uint64) {
	cur, have := r.table[p]
	if have && cur == e {
		return
	}
	r.table[p] = e
	io := r.rec.Record(capture.IO{
		Type: capture.RIBInstall, Proto: route.ProtoRIP, Prefix: p,
		NextHop: e.nextHop, Causes: causes,
	})
	r.ribIO[p] = io.ID
	r.scheduleAdvert(p, []uint64{io.ID})
	r.scheduleFIB(p, []uint64{io.ID})
}

func (r *Instance) remove(p netip.Prefix, causes []uint64) {
	cur, have := r.table[p]
	if !have {
		return
	}
	delete(r.table, p)
	delete(r.ribIO, p)
	io := r.rec.Record(capture.IO{
		Type: capture.RIBRemove, Proto: route.ProtoRIP, Prefix: p,
		NextHop: cur.nextHop, Causes: causes,
	})
	r.scheduleAdvert(p, []uint64{io.ID})
	r.scheduleFIB(p, []uint64{io.ID})
}

func (r *Instance) scheduleAdvert(p netip.Prefix, causes []uint64) {
	if pend, ok := r.pendingAdv[p]; ok {
		r.pendingAdv[p] = append(pend, causes...)
		return
	}
	r.pendingAdv[p] = append([]uint64(nil), causes...)
	r.sched.After(r.timing.AdvertDelay, func() { r.flushAdvert(p) })
}

func (r *Instance) flushAdvert(p netip.Prefix) {
	causes := r.pendingAdv[p]
	delete(r.pendingAdv, p)
	e, have := r.table[p]
	addrs := make([]netip.Addr, 0, len(r.neighbors))
	for a := range r.neighbors {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })
	for _, a := range addrs {
		n := r.neighbors[a]
		if !n.Up {
			continue
		}
		msg := Message{Prefix: p, Metric: Infinity}
		typ := capture.SendWithdraw
		if have && e.from != n.Name {
			msg.Metric = e.metric
			typ = capture.SendAdvert
		}
		// Split horizon with poison reverse: routes learned from n are
		// advertised back as unreachable (metric 16).
		io := r.rec.Record(capture.IO{
			Type: typ, Proto: route.ProtoRIP, Prefix: p,
			Peer: n.Name, PeerAddr: n.Addr, Causes: causes,
		})
		r.env.DeliverRIP(r.name, n.Iface, msg, io.ID)
	}
}

func (r *Instance) scheduleFIB(p netip.Prefix, causes []uint64) {
	if pend, ok := r.pendingFIB[p]; ok {
		r.pendingFIB[p] = append(pend, causes...)
		return
	}
	r.pendingFIB[p] = append([]uint64(nil), causes...)
	r.sched.After(r.timing.FIBDelay, func() { r.flushFIB(p) })
}

func (r *Instance) flushFIB(p netip.Prefix) {
	causes := r.pendingFIB[p]
	delete(r.pendingFIB, p)
	e, have := r.table[p]
	if !have || !e.nextHop.IsValid() {
		r.fib.Withdraw(route.ProtoRIP, p, causes...)
		return
	}
	r.fib.Offer(route.Route{
		Prefix: p, NextHop: e.nextHop, Proto: route.ProtoRIP, Metric: e.metric,
	}, causes...)
}

// Table returns a copy of the RIP table as (prefix -> metric, nextHop).
func (r *Instance) Table() map[netip.Prefix]route.Route {
	out := make(map[netip.Prefix]route.Route, len(r.table))
	for p, e := range r.table {
		out[p] = route.Route{Prefix: p, NextHop: e.nextHop, Proto: route.ProtoRIP, Metric: e.metric}
	}
	return out
}

func lessPrefix(a, b netip.Prefix) bool {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c < 0
	}
	return a.Bits() < b.Bits()
}
