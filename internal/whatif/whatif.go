// Package whatif answers hypothetical questions about a running network by
// converging an emulated copy and injecting events into it — the approach
// §8 sketches via CrystalNet ("runs an emulated copy of the network and
// can inject faults"). The copy is built from a network Blueprint, so the
// real network is never touched: operators can ask "what if this link
// fails?" or "what if I commit this configuration change?" and see the
// verifier's verdict on the would-be data plane first.
package whatif

import (
	"fmt"
	"net/netip"

	"hbverify/internal/config"
	"hbverify/internal/dataplane"
	"hbverify/internal/fib"
	"hbverify/internal/network"
	"hbverify/internal/verify"
)

// Change is a hypothetical event injected into the emulated copy after it
// has converged to the real network's state.
type Change func(n *network.Network) error

// LinkFailure asks: what if the link between a and b goes down?
func LinkFailure(a, b string) Change {
	return func(n *network.Network) error {
		_, err := n.SetLinkUp(a, b, false)
		return err
	}
}

// LinkRecovery asks: what if the link between a and b comes back?
func LinkRecovery(a, b string) Change {
	return func(n *network.Network) error {
		_, err := n.SetLinkUp(a, b, true)
		return err
	}
}

// ConfigUpdate asks: what if this configuration change were committed?
func ConfigUpdate(router, comment string, mutate func(*config.Router)) Change {
	return func(n *network.Network) error {
		_, err := n.UpdateConfig(router, comment, mutate)
		return err
	}
}

// Result is the verdict on the hypothetical network.
type Result struct {
	// Baseline is the verification report on the copy before any change —
	// a sanity check that the emulation reproduced the real state.
	Baseline verify.Report
	// Report is the verdict after the hypothetical changes converged.
	Report verify.Report
	// FIBs is the would-be data plane, for inspection and diffing.
	FIBs map[string]map[netip.Prefix]fib.Entry
	// Events counts the control-plane I/Os the hypothetical produced.
	Events int
}

// OK reports whether the hypothetical keeps the policies satisfied.
func (r Result) OK() bool { return r.Report.OK() }

// NewViolations returns the violations the hypothetical *introduced*:
// those in the post-change report whose (policy, source) was clean in the
// baseline. Pre-existing violations are not the commit's fault, so "would
// this commit break anything" is answered by this set being empty.
func (r Result) NewViolations() []verify.Violation {
	if len(r.Report.Violations) == 0 {
		return nil
	}
	base := make(map[string]struct{}, len(r.Baseline.Violations))
	for _, v := range r.Baseline.Violations {
		base[v.Policy.String()+"|"+v.Source] = struct{}{}
	}
	var out []verify.Violation
	for _, v := range r.Report.Violations {
		if _, pre := base[v.Policy.String()+"|"+v.Source]; !pre {
			out = append(out, v)
		}
	}
	return out
}

// Engine answers what-if questions for one network.
type Engine struct {
	// Seed drives the emulated copy's event interleaving.
	Seed     int64
	Sources  []string
	Policies []verify.Policy
}

// Ask converges a copy from the blueprint, verifies the baseline, applies
// the changes, re-converges, and verifies again.
func (e *Engine) Ask(bp *network.Blueprint, changes ...Change) (Result, error) {
	var res Result
	n, err := bp.Instantiate(e.Seed)
	if err != nil {
		return res, fmt.Errorf("whatif: instantiate: %w", err)
	}
	n.Start()
	if err := n.Run(); err != nil {
		return res, fmt.Errorf("whatif: baseline convergence: %w", err)
	}
	res.Baseline = e.check(n)
	mark := n.Log.Len()
	for _, change := range changes {
		if err := change(n); err != nil {
			return res, fmt.Errorf("whatif: inject: %w", err)
		}
		if err := n.Run(); err != nil {
			return res, fmt.Errorf("whatif: convergence: %w", err)
		}
	}
	res.Report = e.check(n)
	res.FIBs = n.FIBSnapshot()
	res.Events = n.Log.Len() - mark
	return res, nil
}

func (e *Engine) check(n *network.Network) verify.Report {
	tables := map[string]*fib.Table{}
	for _, r := range n.Routers() {
		tables[r.Name] = r.FIB
	}
	w := dataplane.NewWalker(n.Topo, dataplane.TableView(tables))
	return verify.NewChecker(w, e.Sources).Check(e.Policies)
}

// Diff compares the hypothetical FIBs with the live network's, returning
// "router prefix: old -> new" lines for every divergence.
func Diff(live *network.Network, hypo map[string]map[netip.Prefix]fib.Entry) []string {
	var out []string
	for _, r := range live.Routers() {
		liveFIB := r.FIB.Snapshot()
		for p, e := range hypo[r.Name] {
			if cur, ok := liveFIB[p]; !ok || cur.NextHop != e.NextHop {
				out = append(out, fmt.Sprintf("%s %s: %s -> %s", r.Name, p, nhString(liveFIB, p), hopString(e)))
			}
		}
		for p := range liveFIB {
			if _, still := hypo[r.Name][p]; !still {
				out = append(out, fmt.Sprintf("%s %s: %s -> (removed)", r.Name, p, hopString(liveFIB[p])))
			}
		}
	}
	return out
}

func nhString(fibs map[netip.Prefix]fib.Entry, p netip.Prefix) string {
	e, ok := fibs[p]
	if !ok {
		return "(none)"
	}
	return hopString(e)
}

func hopString(e fib.Entry) string {
	if !e.NextHop.IsValid() {
		return "direct"
	}
	return e.NextHop.String()
}
