package whatif

import (
	"net/netip"
	"testing"

	"hbverify/internal/config"
	"hbverify/internal/network"
	"hbverify/internal/verify"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func startPaper(t *testing.T) *network.PaperNet {
	t.Helper()
	pn, err := network.BuildPaper(1, network.DefaultPaperOpts())
	if err != nil {
		t.Fatal(err)
	}
	pn.Start()
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	return pn
}

func engine(pn *network.PaperNet) *Engine {
	return &Engine{
		Seed:    99,
		Sources: []string{"r1", "r2", "r3"},
		Policies: []verify.Policy{
			{Kind: verify.Reachable, Prefix: pn.P},
			{Kind: verify.NoLoop, Prefix: pn.P},
		},
	}
}

func TestBlueprintCopyReproducesState(t *testing.T) {
	pn := startPaper(t)
	bp := pn.Blueprint()
	copyNet, err := bp.Instantiate(42)
	if err != nil {
		t.Fatal(err)
	}
	copyNet.Start()
	if err := copyNet.Run(); err != nil {
		t.Fatal(err)
	}
	// The copy's FIBs match the original's, entry for entry.
	for _, r := range pn.Routers() {
		orig := r.FIB.Snapshot()
		cp := copyNet.Router(r.Name).FIB.Snapshot()
		if len(orig) != len(cp) {
			t.Fatalf("%s: %d vs %d entries", r.Name, len(orig), len(cp))
		}
		for p, e := range orig {
			if cp[p].NextHop != e.NextHop {
				t.Fatalf("%s %s: %v vs %v", r.Name, p, e.NextHop, cp[p].NextHop)
			}
		}
	}
	// The original was not perturbed (its log length is untouched by the
	// copy's activity).
	if copyNet.Log == pn.Log {
		t.Fatal("copy shares the original's log")
	}
}

func TestBlueprintPreservesDownLinks(t *testing.T) {
	pn := startPaper(t)
	if _, err := pn.SetLinkUp("r2", "e2", false); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	bp := pn.Blueprint()
	copyNet, err := bp.Instantiate(1)
	if err != nil {
		t.Fatal(err)
	}
	if copyNet.Topo.LinkBetween("r2", "e2").Up() {
		t.Fatal("down link came back up in the copy")
	}
	copyNet.Start()
	if err := copyNet.Run(); err != nil {
		t.Fatal(err)
	}
	// The copy converges to the failover state: r3 exits via r1.
	e, ok := copyNet.Router("r3").FIB.Exact(pn.P)
	if !ok || e.NextHop != addr("1.1.1.1") {
		t.Fatalf("copy failover state = %+v %v", e, ok)
	}
}

func TestWhatIfLinkFailureIsSafe(t *testing.T) {
	pn := startPaper(t)
	res, err := engine(pn).Ask(pn.Blueprint(), LinkFailure("r2", "e2"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Baseline.OK() {
		t.Fatalf("baseline violated: %v", res.Baseline.Violations)
	}
	if !res.OK() {
		t.Fatalf("failover should keep P reachable: %v", res.Report.Violations)
	}
	// The hypothetical data plane exits via r1.
	if res.FIBs["r3"][pn.P].NextHop != addr("1.1.1.1") {
		t.Fatalf("hypothetical r3 = %+v", res.FIBs["r3"][pn.P])
	}
	// The real network is untouched: r3 still exits via r2.
	live, _ := pn.Router("r3").FIB.Exact(pn.P)
	if live.NextHop != addr("2.2.2.2") {
		t.Fatalf("live network perturbed: %+v", live)
	}
	if res.Events == 0 {
		t.Fatal("no hypothetical events recorded")
	}
}

func TestWhatIfDoubleFailureBlackholes(t *testing.T) {
	pn := startPaper(t)
	res, err := engine(pn).Ask(pn.Blueprint(),
		LinkFailure("r2", "e2"), LinkFailure("r1", "e1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("double uplink failure should violate reachability")
	}
}

func TestWhatIfConfigChangePredictsViolation(t *testing.T) {
	pn := startPaper(t)
	eng := engine(pn)
	eng.Policies = []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
	res, err := eng.Ask(pn.Blueprint(), ConfigUpdate("r2", "what-if lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Baseline.OK() {
		t.Fatal("baseline should comply")
	}
	if res.OK() {
		t.Fatal("the LP-10 change should be predicted to violate the policy")
	}
	// And the operator can see exactly what would move.
	diffs := Diff(pn.Network, res.FIBs)
	if len(diffs) == 0 {
		t.Fatal("no FIB diffs reported")
	}
	// The real network never saw the change.
	if len(pn.Store.History("r2")) != 1 {
		t.Fatal("what-if leaked into the real config store")
	}
}

func TestWhatIfRecovery(t *testing.T) {
	pn := startPaper(t)
	if _, err := pn.SetLinkUp("r2", "e2", false); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	eng := engine(pn)
	eng.Policies = []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
	res, err := eng.Ask(pn.Blueprint(), LinkRecovery("r2", "e2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.OK() {
		t.Fatal("baseline (failed uplink) should violate the preferred-egress policy")
	}
	if !res.OK() {
		t.Fatalf("recovery should restore the policy: %v", res.Report.Violations)
	}
}

func TestDiffFormats(t *testing.T) {
	pn := startPaper(t)
	res, err := engine(pn).Ask(pn.Blueprint(), LinkFailure("r2", "e2"))
	if err != nil {
		t.Fatal(err)
	}
	diffs := Diff(pn.Network, res.FIBs)
	found := false
	for _, d := range diffs {
		if d == "r3 203.0.113.0/24: 2.2.2.2 -> 1.1.1.1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected r3 egress diff, got %v", diffs)
	}
}
