// Failure artifacts: a JSON file holding the exact (seed, schedule,
// shape, mix) that reproduces an oracle failure, plus the human-readable
// report printed when a scenario test fails.

package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Artifact is the on-disk reproduction record for one failure.
type Artifact struct {
	Config  Config  `json:"config"`
	Failure Failure `json:"failure"`
}

// WriteArtifact persists the artifact as indented JSON at path.
func WriteArtifact(path string, a Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact loads an artifact written by WriteArtifact.
func ReadArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("artifact %s: %w", path, err)
	}
	return a, nil
}

// FailureReport renders the failure, the minimized schedule, and the
// one-command reproduction line for test logs.
func FailureReport(a Artifact, path string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario failure: %s\n", a.Failure.Error())
	fmt.Fprintf(&b, "  seed=%d shape=%s mix=%s routers=%d rounds=%d",
		a.Config.Seed, a.Config.Shape, a.Config.Mix, a.Config.Routers, a.Config.Rounds)
	if a.Config.Bug != "" {
		fmt.Fprintf(&b, " bug=%s", a.Config.Bug)
	}
	fmt.Fprintf(&b, "\n  minimized schedule (%d events):\n", len(a.Config.Schedule))
	for _, ev := range a.Config.Schedule {
		fmt.Fprintf(&b, "    %s\n", ev)
	}
	if path != "" {
		fmt.Fprintf(&b, "  artifact: %s\n", path)
		fmt.Fprintf(&b, "  reproduce: go run ./cmd/replay -schedule %s\n", path)
	}
	return b.String()
}

// ReportFailure shrinks the failing config, writes the artifact to dir
// (os.TempDir() when empty), and returns the rendered report. It is the
// one call sites use so every failure path prints the same way.
func ReportFailure(cfg Config, failure Failure, dir string) (Artifact, string) {
	mat, err := Materialize(cfg)
	if err == nil {
		cfg = mat
	}
	cfg = Shrink(cfg, failure, 0)
	// Re-run the minimized schedule so the reported failure detail matches
	// what the artifact reproduces.
	if res := Run(cfg); res.Failure != nil && res.Failure.Oracle == failure.Oracle {
		failure = *res.Failure
	}
	a := Artifact{Config: cfg, Failure: failure}
	if dir == "" {
		dir = os.TempDir()
	}
	path := fmt.Sprintf("%s/scenario-seed%d-%s.json", dir, cfg.Seed, failure.Oracle)
	if err := WriteArtifact(path, a); err != nil {
		path = ""
	}
	return a, FailureReport(a, path)
}
