// Greedy schedule minimization: when a scenario fails, drop churn events
// one at a time (re-running the whole scenario after each drop) and keep
// any drop that preserves a failure of the same oracle. Iterate to a
// fixpoint so earlier drops can enable later ones.

package scenario

// Shrink minimizes cfg's schedule while preserving the failure. cfg must
// be materialized (non-nil schedule) and fail when Run; the returned
// config fails the same oracle with a subset of the original events.
// maxPasses bounds the fixpoint iteration (0 means a default of 3); each
// pass re-runs the scenario once per remaining event, so shrinking costs
// O(passes × events) full runs.
func Shrink(cfg Config, failure Failure, maxPasses int) Config {
	if maxPasses <= 0 {
		maxPasses = 3
	}
	if cfg.Schedule == nil {
		return cfg
	}
	for pass := 0; pass < maxPasses; pass++ {
		shrunk := false
		for i := 0; i < len(cfg.Schedule); i++ {
			trial := cfg
			trial.Schedule = append([]Event{}, cfg.Schedule[:i]...)
			trial.Schedule = append(trial.Schedule, cfg.Schedule[i+1:]...)
			res := Run(trial)
			if res.Failure != nil && res.Failure.Oracle == failure.Oracle {
				cfg = trial
				i-- // the next event shifted into slot i
				shrunk = true
			}
		}
		if !shrunk {
			break
		}
	}
	return cfg
}
