// Package scenario is the randomized correctness harness: it generates
// seeded deterministic networks, drives them through churn schedules, and
// checks twelve differential oracles after every convergence round —
//
//  0. infer-fast-vs-reference: every shared-index inference strategy
//     produces node-, edge-, and confidence-identical graphs to the
//     preserved pre-index reference implementations;
//  1. incremental-vs-full: hbr.Incremental yields a node- and
//     edge-identical HBG to a fresh full inference over the same log;
//  2. compaction-vs-full: a bounded capture window — events folded into
//     an incremental cache, then evicted below the retention floor, the
//     stream daemon's memory-bounding discipline — yields the identical
//     graph and root causes to a full inference pruned at the same floor;
//  3. snapshot-consistency: snapshots assembled from HBR cuts replay to
//     the live FIBs, reach §5-consistency from lagged cuts, and show no
//     loop that never existed in any instantaneous ground-truth state;
//  4. checker-determinism: verify.Checker verdicts are identical across
//     worker counts, repeated runs, and eqclass sharding;
//  5. dist-vs-central: the distributed TCP fleet's walks are
//     byte-identical — path, outcome, egress — to the central walker's
//     over the same FIBs;
//  6. repair-rollback: after injecting a faulty config and repairing it
//     via HBG root-cause rollback, the network reconverges to the exact
//     pre-fault data plane;
//  7. eqclass-delta-vs-full: the delta path — incremental equivalence
//     classes plus the cached-walk checker — agrees exactly with a
//     from-scratch eqclass.Compute and a cold Checker.Check;
//  8. symbolic-vs-probe: every concrete single-next-hop path enumerated
//     through a symbolic walk's ECMP DAG, independently aggregated,
//     reproduces the symbolic walk's outcome and egress set, and no
//     concrete path traverses an edge the DAG lacks;
//  9. intern-vs-copy: every attribute set a BGP speaker retains in its
//     interned Adj-RIB-In is byte-equal to one actually received on the
//     wire — the hash-consed canonical table never aliases distinct sets;
//  10. serve-vs-batch: every answer the concurrent query engine gives —
//     verdict and walk — is identical to a fresh batch check over the
//     same live state, however the plan was obtained (cache hit, pinned
//     plan, coalesced flight, or fresh execution);
//  11. localcheck-superset: per-router local invariant checks over
//     distance labels flag a superset of the central walker's
//     violations — on converged views and on update-in-flight snapshots
//     checked against the pre-update label epoch — so local-check mode
//     never certifies a state the central walker would fail.
//
// A failure carries the seed and churn schedule; Shrink greedily drops
// events until the failure is minimal, and the artifact replays with
// `go run ./cmd/replay -schedule <file>`.
package scenario

import (
	"fmt"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/eqclass"
	"hbverify/internal/fib"
	"hbverify/internal/hbg"
	"hbverify/internal/hbr"
	"hbverify/internal/metrics"
	"hbverify/internal/network"
	"hbverify/internal/repair"
	"hbverify/internal/route"
	"hbverify/internal/serve"
	"hbverify/internal/verify"
)

// Known injectable bugs, used to prove the oracles can fail.
const (
	// BugStaleCache freezes the inference cache at its first result, as if
	// the incremental layer never noticed the log growing.
	BugStaleCache = "stale-cache"
	// BugSkipRollback detects the violation but silently skips applying
	// the repair rollback, as a repair engine that reports success without
	// acting would.
	BugSkipRollback = "skip-rollback"
	// BugStaleEqclass freezes the delta verification path: the incremental
	// equivalence classifier is seeded once but never hears FIB updates,
	// and the walk cache is never invalidated — the failure mode of a
	// delta pipeline whose change feed silently disconnects.
	BugStaleEqclass = "stale-eqclass"
	// BugDropBatch makes the distributed coordinator silently lose every
	// walk batch destined for one node while still reporting the round as
	// complete — the failure mode of a transport that acks frames it never
	// delivered.
	BugDropBatch = "drop-batch"
	// BugSwapSendMatch inverts the tie-breaking comparison in the shared
	// index's send/recv matcher, so among equally plausible candidate sends
	// the furthest (not nearest) in time wins — the kind of off-by-one a
	// binary-searched rewrite of a linear scan invites.
	BugSwapSendMatch = "swap-send-match"
	// BugSkipFold makes the windowed-compaction mirror evict capture
	// events without first folding their inferred edges into the cached
	// graph — the failure mode of a compactor that trims the log before
	// the inference tick that would have covered it.
	BugSkipFold = "skip-fold"
	// BugDropEcmpBranch makes symbolic exploration silently ignore the
	// last member of every multi-way ECMP branch — the failure mode of a
	// set-walker whose branch iteration is off by one. Concrete probe
	// walks are unaffected, so the symbolic-vs-probe oracle must catch
	// the missing branch.
	BugDropEcmpBranch = "drop-ecmp-branch"
	// BugInternAlias makes the BGP attribute interner treat the first AS in
	// the path as a wildcard when hashing and comparing, so distinct
	// attribute sets collapse onto one canonical entry — the failure mode
	// of a hash-consing table whose equality check drifts from its hash.
	BugInternAlias = "intern-alias"
	// BugStalePlan makes the query engine pin each plan's first walk
	// forever, ignoring cache invalidation — the failure mode of a plan
	// cache whose churn feed disconnects while the batch path stays
	// healthy. The serve-vs-batch oracle must catch the divergence.
	BugStalePlan = "stale-plan"
	// BugSkipLocalCheck silences every per-router local invariant check
	// while the distance labels stay in place — the failure mode of a
	// local-check mode that certifies updates it never validated. The
	// localcheck-superset oracle must catch it on update-in-flight
	// snapshots, where a silenced checker leaves a central violation with
	// no local flag to escalate it.
	BugSkipLocalCheck = "skip-local-check"
)

// Config describes one deterministic scenario. The zero values of Shape,
// Mix, Routers, and Rounds are derived from Seed; a nil Schedule is
// generated from Seed, while a non-nil (even empty) Schedule is replayed
// verbatim — that distinction is what makes shrunk artifacts exact.
type Config struct {
	Seed     int64   `json:"seed"`
	Shape    string  `json:"shape,omitempty"`
	Mix      string  `json:"mix,omitempty"`
	Routers  int     `json:"routers,omitempty"`
	Rounds   int     `json:"rounds,omitempty"`
	Bug      string  `json:"bug,omitempty"`
	Schedule []Event `json:"schedule,omitempty"`
}

// Normalize fills unset fields deterministically from Seed.
func Normalize(cfg Config) Config {
	rng := deriveRNG(cfg.Seed, 0)
	shape := randomShapes[rng.Intn(len(randomShapes))]
	mix := Mixes[rng.Intn(len(Mixes))]
	routers := 4 + rng.Intn(3)
	if cfg.Shape == "" {
		cfg.Shape = shape
	}
	if cfg.Mix == "" {
		cfg.Mix = mix
	}
	if cfg.Routers == 0 {
		cfg.Routers = routers
	}
	// The scale shapes are fixed topologies; Routers reports their true
	// size rather than the seed-drawn count the classic shapes use.
	switch cfg.Shape {
	case "fattree-k4":
		cfg.Routers = 20
	case "isp-rr":
		cfg.Routers = 8
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 3
	}
	return cfg
}

// Materialize normalizes cfg and, when the schedule is unset, fills it
// with the generated churn — the form Shrink and artifacts need.
func Materialize(cfg Config) (Config, error) {
	cfg = Normalize(cfg)
	if cfg.Schedule != nil {
		return cfg, nil
	}
	w, err := buildWorld(cfg)
	if err != nil {
		return cfg, err
	}
	cfg.Schedule = generateSchedule(cfg, w)
	return cfg, nil
}

// Failure is one oracle violation, tied to the round that produced it.
type Failure struct {
	Oracle string `json:"oracle"`
	Round  int    `json:"round"`
	Detail string `json:"detail"`
}

func (f Failure) Error() string {
	return fmt.Sprintf("oracle %s failed at round %d: %s", f.Oracle, f.Round, f.Detail)
}

// Result summarizes one scenario run.
type Result struct {
	Config  Config
	Failure *Failure
	// IOs is the final capture-log length; Rounds is how many rounds
	// completed before the run ended.
	IOs    int
	Rounds int
}

// roundGap separates rounds (and the oracle-4 fault injection) in virtual
// time. It must exceed hbr.Rules' 500ms same-router window so the
// injected fault's FIB update cannot be mis-attributed to leftover churn.
const roundGap = 2 * time.Second

// Run executes the scenario and returns the first oracle failure, if any.
func Run(cfg Config) *Result {
	cfg = Normalize(cfg)
	res := &Result{Config: cfg}
	fail := func(oracle string, round int, format string, args ...interface{}) *Result {
		res.Failure = &Failure{Oracle: oracle, Round: round, Detail: fmt.Sprintf(format, args...)}
		if res.Config.Schedule == nil {
			res.Config.Schedule = []Event{}
		}
		return res
	}

	if cfg.Bug == BugSwapSendMatch {
		hbr.SetSwapSendMatchBug(true)
		defer hbr.SetSwapSendMatchBug(false)
	}
	if cfg.Bug == BugInternAlias {
		route.SetInternAliasBug(true)
		defer route.SetInternAliasBug(false)
	}

	w, err := buildWorld(cfg)
	if err != nil {
		return fail("harness", -1, "build: %v", err)
	}
	if cfg.Schedule == nil {
		cfg.Schedule = generateSchedule(cfg, w)
		res.Config.Schedule = cfg.Schedule
	}
	w.net.Start()
	if err := w.net.Run(); err != nil {
		return fail("convergence", -1, "initial convergence: %v", err)
	}

	h := newHarness(cfg, w)
	defer h.serve.Close()
	byRound := map[int][]Event{}
	for _, ev := range cfg.Schedule {
		byRound[ev.Round] = append(byRound[ev.Round], ev)
	}
	for round := 0; round < cfg.Rounds; round++ {
		base := w.net.Sched.Now().Add(roundGap)
		for _, ev := range byRound[round] {
			ev := ev
			w.net.Sched.At(base.Add(time.Duration(ev.At)), func() { applyEvent(w, ev) })
		}
		if err := w.net.Run(); err != nil {
			return fail("convergence", round, "churn convergence: %v", err)
		}
		if f := h.checkRound(round); f != nil {
			res.Failure = f
			res.IOs = w.net.Log.Len()
			res.Rounds = round
			return res
		}
		res.Rounds = round + 1
	}
	res.IOs = w.net.Log.Len()
	return res
}

// harness holds the inference / verification / repair stack under test.
// It mirrors the production wiring in hbverify.NewPipeline but owns its
// pieces so bugs can be injected between them.
type harness struct {
	cfg    Config
	w      *world
	reg    *metrics.Registry
	inc    *hbr.Incremental
	strat  hbr.Strategy
	full   hbr.Rules
	engine *repair.Engine
	// The delta verification path under test: incremental equivalence
	// classes fed by FIB updates, and a checker whose walks persist in
	// wcache across rounds with per-router invalidation.
	eqc    *eqclass.Incremental
	wcache *verify.WalkCache
	cached *verify.Checker
	// The query engine under test: shares wcache and eqc with the delta
	// path, so its plans persist across rounds and churn invalidates them
	// through the same feed the batch checker relies on.
	serve *serve.Engine
	// The windowed-compaction mirror for the compaction-vs-full oracle:
	// cwin is the retained capture window (original log IDs preserved),
	// folded into cinc before every eviction exactly as the stream daemon
	// folds before compacting; cseen counts log events already mirrored.
	cRules hbr.Rules
	cinc   *hbr.Incremental
	cwin   []capture.IO
	cseen  int
}

func newHarness(cfg Config, w *world) *harness {
	h := &harness{cfg: cfg, w: w, reg: metrics.NewRegistry()}
	h.inc = hbr.NewIncremental(hbr.Rules{}, h.reg)
	h.strat = h.inc
	if cfg.Bug == BugStaleCache {
		h.strat = &staleStrategy{base: h.strat}
	}
	// The compaction mirror needs rule windows small enough that churn
	// rounds (roundGap apart) actually age past the retention floor, and a
	// skew slack covering the worlds' ±20ms clock offsets twice over.
	h.cRules = hbr.Rules{Window: 200 * time.Millisecond,
		ConfigWindow: 500 * time.Millisecond, CrossWindow: 200 * time.Millisecond}
	h.cinc = hbr.NewIncremental(h.cRules, h.reg)
	h.cinc.SkewSlack = compactSlack
	h.eqc = eqclass.NewIncremental(h.reg)
	h.wcache = verify.NewWalkCache()
	if cfg.Bug == BugStaleEqclass {
		// Seed once, never subscribe: the classifier and walk cache go
		// stale the moment the first post-seed FIB update lands.
		for _, r := range w.net.Routers() {
			h.eqc.Seed(r.Name, r.FIB.Snapshot())
		}
	} else {
		for _, r := range w.net.Routers() {
			name := r.Name
			h.eqc.Watch(name, r.FIB)
			r.FIB.OnChange(func(fib.Update) { h.wcache.InvalidateRouter(name) })
		}
		w.net.OnLinkChange(func(a, b string, up bool) {
			h.wcache.InvalidateRouter(a)
			h.wcache.InvalidateRouter(b)
		})
	}
	h.cached = verify.NewChecker(h.liveWalker(), w.verifySources)
	h.cached.Cache = h.wcache
	// The query engine serves from the same live walker, plan cache, and
	// classifier; MaxQueue is negative so the sequential oracle never sheds.
	h.serve = serve.New(serve.Config{
		Executor:     serve.WalkerExecutor{W: h.liveWalker()},
		Cache:        h.wcache,
		Classes:      h.eqc,
		Metrics:      h.reg,
		MaxQueue:     -1,
		BugStalePlan: cfg.Bug == BugStalePlan,
	})
	h.engine = repair.NewEngine(w.net, h.infer, w.verifySources)
	h.engine.Metrics = h.reg
	h.engine.Invalidate = func() {
		h.inc.Invalidate()
		if cfg.Bug != BugStaleEqclass {
			h.eqc.Reset()
			h.wcache.Flush()
		}
	}
	return h
}

// infer is the harness's production inference path: the (possibly bugged)
// incremental strategy over the oracle-stripped log.
func (h *harness) infer(ios []capture.IO) *hbg.Graph {
	return h.strat.Infer(capture.StripOracle(ios))
}

// checkRound runs the eleven oracles in order and returns the first
// failure. The intern-vs-copy oracle runs first: aliased attributes would
// corrupt every downstream observable, so a canonical-table fault should be
// reported as such. The fast-vs-reference oracle runs next so any
// divergence in the inference rewrite is reported as such, not as a
// downstream repair/snapshot anomaly; the eqclass-delta oracle runs after
// repair-rollback, so it also validates that the delta state survives (is
// correctly flushed across) a fault injection and rollback. serve-vs-batch
// runs last: it consumes the same shared cache and classifier, so an
// upstream delta fault should be reported by the delta oracle, not as a
// query-engine anomaly.
func (h *harness) checkRound(round int) *Failure {
	if f := h.oracleInternVsCopy(round); f != nil {
		return f
	}
	if f := h.oracleInferFastVsReference(round); f != nil {
		return f
	}
	if f := h.oracleIncrementalVsFull(round); f != nil {
		return f
	}
	if f := h.oracleCompactionVsFull(round); f != nil {
		return f
	}
	if f := h.oracleSnapshots(round); f != nil {
		return f
	}
	if f := h.oracleCheckerDeterminism(round); f != nil {
		return f
	}
	if f := h.oracleSymbolicVsProbe(round); f != nil {
		return f
	}
	if f := h.oracleDistVsCentral(round); f != nil {
		return f
	}
	if f := h.oracleLocalSuperset(round); f != nil {
		return f
	}
	if f := h.oracleRepairRollback(round); f != nil {
		return f
	}
	if f := h.oracleEqclassDelta(round); f != nil {
		return f
	}
	return h.oracleServeVsBatch(round)
}

// staleStrategy is BugStaleCache: it computes once and then returns the
// frozen graph forever.
type staleStrategy struct {
	base hbr.Strategy
	g    *hbg.Graph
}

func (s *staleStrategy) Name() string { return "stale(" + s.base.Name() + ")" }

func (s *staleStrategy) Infer(ios []capture.IO) *hbg.Graph {
	if s.g == nil {
		s.g = s.base.Infer(ios)
	}
	return s.g
}

// advance moves virtual time forward by d even when the event queue is
// empty (RunUntil alone never advances the clock past the last event).
func advance(n *network.Network, d time.Duration) error {
	n.Sched.At(n.Sched.Now().Add(d), func() {})
	return n.Run()
}
