package scenario

import (
	"encoding/json"
	"flag"
	"fmt"
	"reflect"
	"testing"
)

// rounds is the opt-in soak knob: `go test ./internal/scenario
// -scenario.rounds=25` runs each seed through 25 churn rounds instead of
// the quick default.
var rounds = flag.Int("scenario.rounds", 0, "churn rounds per scenario seed (0 = quick default)")

// TestScenario drives ten seeded scenarios through churn and the eight
// differential oracles. Each seed is a subtest so a failure names the
// seed directly.
func TestScenario(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		norm := Normalize(Config{Seed: seed})
		t.Run(fmt.Sprintf("seed%d-%s-%s", seed, norm.Shape, norm.Mix), func(t *testing.T) {
			cfg := Config{Seed: seed, Rounds: *rounds}
			res := Run(cfg)
			if res.Failure != nil {
				_, report := ReportFailure(res.Config, *res.Failure, t.TempDir())
				t.Fatal(report)
			}
			if res.IOs == 0 {
				t.Fatalf("seed %d: no IOs captured", seed)
			}
		})
	}
}

// TestScenarioDeterminism re-runs one scenario and requires the identical
// materialized schedule and capture-log length — the property replay and
// shrinking depend on.
func TestScenarioDeterminism(t *testing.T) {
	cfg, err := Materialize(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, b := Run(cfg), Run(cfg)
	if a.Failure != nil || b.Failure != nil {
		t.Fatalf("unexpected failures: %v / %v", a.Failure, b.Failure)
	}
	if a.IOs != b.IOs || a.Rounds != b.Rounds {
		t.Fatalf("runs diverge: %d IOs/%d rounds vs %d IOs/%d rounds", a.IOs, a.Rounds, b.IOs, b.Rounds)
	}
	if !reflect.DeepEqual(a.Config.Schedule, b.Config.Schedule) {
		t.Fatal("materialized schedules diverge between runs")
	}
}

// forceBug runs a seeded scenario with a known bug injected and requires
// the named oracle (or oracles) to catch it, the shrink to produce a
// reproducible artifact, and the artifact to reproduce the failure. The
// seed picks a schedule whose churn actually exposes the bug.
func forceBug(t *testing.T, seed int64, bug string, oracles ...string) {
	t.Helper()
	forceBugCfg(t, Config{Seed: seed, Bug: bug}, oracles...)
}

func forceBugCfg(t *testing.T, cfg Config, oracles ...string) {
	t.Helper()
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatalf("bug %q not caught by any oracle", cfg.Bug)
	}
	found := false
	for _, o := range oracles {
		if res.Failure.Oracle == o {
			found = true
		}
	}
	if !found {
		t.Fatalf("bug %q caught by oracle %q, want one of %v", cfg.Bug, res.Failure.Oracle, oracles)
	}

	a, report := ReportFailure(res.Config, *res.Failure, t.TempDir())
	t.Logf("forced-bug report:\n%s", report)
	if len(a.Config.Schedule) > len(res.Config.Schedule) {
		t.Fatalf("shrink grew the schedule: %d > %d", len(a.Config.Schedule), len(res.Config.Schedule))
	}

	// The artifact must reproduce: round-trip through JSON and re-run.
	data, err := json.Marshal(a.Config)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schedule == nil {
		back.Schedule = []Event{}
	}
	rerun := Run(back)
	if rerun.Failure == nil {
		t.Fatal("minimized artifact no longer fails")
	}
	if rerun.Failure.Oracle != a.Failure.Oracle {
		t.Fatalf("artifact fails oracle %q, original failed %q", rerun.Failure.Oracle, a.Failure.Oracle)
	}
}

// TestForcedStaleCache proves the incremental-vs-full oracle catches a
// cache that never refreshes. (With the frozen graph the repair engine can
// also trip first on round 0, before the cache visibly diverges.)
func TestForcedStaleCache(t *testing.T) {
	forceBug(t, 3, BugStaleCache, OracleIncremental, OracleRepair)
}

// TestForcedSkipRollback proves the repair-rollback oracle catches a
// repair engine that never applies its rollback.
func TestForcedSkipRollback(t *testing.T) {
	forceBug(t, 3, BugSkipRollback, OracleRepair)
}

// TestForcedStaleEqclass proves the eqclass-delta-vs-full oracle catches a
// delta pipeline whose FIB change feed is disconnected: the frozen
// classifier diverges from full Compute as soon as churn (or the round's
// fault injection) moves a FIB entry.
func TestForcedStaleEqclass(t *testing.T) {
	forceBug(t, 3, BugStaleEqclass, OracleEqclassDelta)
}

// TestForcedDropBatch proves the dist-vs-central oracle catches a
// transport that loses walk batches while reporting the round complete:
// the victim node's walks come back empty and diverge from the central
// walker immediately.
func TestForcedDropBatch(t *testing.T) {
	forceBug(t, 3, BugDropBatch, OracleDist)
}

// TestForcedSwapSendMatch proves the infer-fast-vs-reference oracle
// catches an inverted tie-break in the indexed send/recv matcher: with
// multiple in-window candidate sends, the bugged fast path attributes the
// recv to the furthest send and diverges from the reference edge set.
// (The same wrong edges can also surface first through the repair engine's
// root-cause walk.)
func TestForcedSwapSendMatch(t *testing.T) {
	forceBug(t, 4, BugSwapSendMatch, OracleInferRef, OracleRepair)
}

// TestForcedSkipFold proves the compaction-vs-full oracle catches a
// compactor that evicts capture events before folding their edges into
// the cached graph: once the round's history ages past the retention
// floor, the unfolded events' nodes and edges are simply gone from the
// window graph while the pruned full inference still has them.
func TestForcedSkipFold(t *testing.T) {
	forceBug(t, 3, BugSkipFold, OracleCompaction)
}

// TestForcedDropEcmpBranch proves the symbolic-vs-probe oracle catches a
// set-walker that silently skips an ECMP branch. The fat-tree OSPF world
// guarantees equal-cost fan-out (every edge router is dual-homed to both
// cores), so concrete probe enumeration finds paths through the branch the
// bugged symbolic walk never recorded.
func TestForcedDropEcmpBranch(t *testing.T) {
	forceBugCfg(t, Config{Seed: 3, Shape: "fattree", Mix: "ospf", Routers: 6, Bug: BugDropEcmpBranch},
		OracleSymbolic)
}

// TestForcedInternAlias proves the intern-vs-copy oracle catches a canonical
// attribute table that aliases distinct sets. The BGP mix has e1 (AS 100)
// and e2 (AS 200) announcing the multi-homed prefix P with single-AS paths
// differing only in that AS, exactly what the wildcarded first-AS hash
// collapses; some speaker then retains an AS path no wire message carried.
func TestForcedInternAlias(t *testing.T) {
	forceBugCfg(t, Config{Seed: 3, Mix: "ospf+bgp", Bug: BugInternAlias}, OracleInternCopy)
}

// TestForcedStalePlan proves the serve-vs-batch oracle catches a query
// engine whose plan cache stops hearing invalidations: the first round's
// walks are pinned, the next round's churn moves forwarding for a queried
// plan, and the pinned answer diverges from the fresh batch check.
func TestForcedStalePlan(t *testing.T) {
	forceBug(t, 3, BugStalePlan, OracleServe)
}

// TestForcedSkipLocalCheck proves the localcheck-superset oracle catches
// a local-check mode whose per-router checkers are silenced: on the
// oracle's update-in-flight snapshot a labeled router loses its covering
// route, the central walker fails the class, and with no local flag (and
// fresh labels vouching for the source) the superset property breaks.
func TestForcedSkipLocalCheck(t *testing.T) {
	forceBug(t, 3, BugSkipLocalCheck, OracleLocalCheck)
}

// TestScenarioScaleShapes drives the scale shapes — the 4-ary fat-tree and
// the ISP route-reflector hierarchy from internal/network — through churn
// and the full oracle set, with the walk-driven oracles sourcing from the
// seeded verifySources sample. These shapes are explicit-only (Normalize
// never draws them), so this is their coverage.
func TestScenarioScaleShapes(t *testing.T) {
	for _, shape := range []string{"fattree-k4", "isp-rr"} {
		shape := shape
		t.Run(shape, func(t *testing.T) {
			res := Run(Config{Seed: 2, Shape: shape, Rounds: 2})
			if res.Failure != nil {
				_, report := ReportFailure(res.Config, *res.Failure, t.TempDir())
				t.Fatal(report)
			}
			if res.IOs == 0 {
				t.Fatal("no IOs captured")
			}
		})
	}
}

// TestISPRRScheduleKinds asserts the isp-rr generator draws the
// reflector-flap and prefix-burst churn kinds — with well-formed hub,
// client, and burst fields — and that the classic shapes, whose hub and
// origin pools are empty, never draw them (their seeded schedules must
// stay byte-identical to before these kinds existed).
func TestISPRRScheduleKinds(t *testing.T) {
	seenFlap, seenBurst := false, false
	for seed := int64(1); seed <= 6; seed++ {
		cfg, err := Materialize(Config{Seed: seed, Shape: "isp-rr", Rounds: 4})
		if err != nil {
			t.Fatal(err)
		}
		withdrawn := map[string]bool{}
		for _, ev := range cfg.Schedule {
			switch ev.Kind {
			case KindRRFlap:
				seenFlap = true
				if ev.A == "" || len(ev.Peers) == 0 {
					t.Fatalf("seed %d: malformed rr flap %s", seed, ev)
				}
			case KindPrefixBurst:
				seenBurst = true
				if got := burstPrefixes(ev.Prefix, ev.Value); len(got) != int(ev.Value) || ev.Value < 2 {
					t.Fatalf("seed %d: burst %s expands to %d prefixes", seed, ev, len(got))
				}
			case KindPrefixWithdraw:
				withdrawn[ev.Prefix] = true
			}
		}
		// Every burst retracts within its round pair.
		for _, ev := range cfg.Schedule {
			if ev.Kind == KindPrefixBurst && !withdrawn[ev.Prefix] {
				t.Fatalf("seed %d: burst %s never withdrawn", seed, ev)
			}
		}
	}
	if !seenFlap || !seenBurst {
		t.Fatalf("isp-rr schedules across seeds drew flap=%v burst=%v, want both", seenFlap, seenBurst)
	}
	for seed := int64(1); seed <= 4; seed++ {
		cfg, err := Materialize(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range cfg.Schedule {
			if ev.Kind == KindRRFlap || ev.Kind == KindPrefixBurst || ev.Kind == KindPrefixWithdraw {
				t.Fatalf("classic shape drew scale-only kind: %s", ev)
			}
		}
	}
}

// TestShrinkPreservesFailure checks the shrinker's contract directly on a
// forced failure: the minimized config still fails the same oracle.
func TestShrinkPreservesFailure(t *testing.T) {
	cfg, err := Materialize(Config{Seed: 5, Bug: BugSkipRollback})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(cfg)
	if res.Failure == nil {
		t.Fatal("forced bug did not fail")
	}
	small := Shrink(cfg, *res.Failure, 0)
	if len(small.Schedule) > len(cfg.Schedule) {
		t.Fatal("shrink grew the schedule")
	}
	again := Run(small)
	if again.Failure == nil || again.Failure.Oracle != res.Failure.Oracle {
		t.Fatalf("shrunk config failure = %v, want oracle %s", again.Failure, res.Failure.Oracle)
	}
}
