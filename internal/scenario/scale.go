// Scale shapes: the big builders from internal/network wired into the
// scenario harness as explicit smoke-tier shapes, so they stop being
// bench-only topologies. "fattree-k4" is the 4-ary fat-tree (20 routers,
// 32 links, OSPF everywhere, ECMP-rich); "isp-rr" is the BGP
// route-reflector hierarchy (top + 2 mids + 4 PEs + one external
// provider). Both run the full differential oracle set, but the
// walk-driven oracles source from a seeded sample of routers
// (world.verifySources) rather than every internal, which keeps a round
// smoke-affordable at these sizes. Neither shape is ever drawn from a
// seed — randomShapes pins the generated draw to the classics — so all
// existing (seed, schedule) artifacts replay unchanged.

package scenario

import (
	"fmt"
	"net/netip"

	"hbverify/internal/network"
)

// buildScaleWorld constructs the world for the scale shapes. Config.Routers
// is ignored: the shape fixes its own size.
func buildScaleWorld(cfg Config) (*world, error) {
	w := &world{external: map[string]bool{},
		staticNH: map[string]string{}, staticNHs: map[string][]string{}}
	switch cfg.Shape {
	case "fattree-k4":
		if err := buildFatTreeWorld(cfg, w); err != nil {
			return nil, err
		}
	case "isp-rr":
		if err := buildISPRRWorld(cfg, w); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("scenario: unknown scale shape %q", cfg.Shape)
	}
	return w, nil
}

// addStubLAN attaches prefix as a stub LAN on router, with the .1 host
// address — the same ownership convention the generated mixes use.
func addStubLAN(n *network.Network, router, iface string, p netip.Prefix) error {
	a4 := p.Addr().As4()
	addr := netip.AddrFrom4([4]byte{a4[0], a4[1], a4[2], 1})
	_, err := n.Topo.AddStub(router, iface, addr, p)
	return err
}

// buildFatTreeWorld lays out the 4-ary fat-tree, attaches P to an edge
// router in the first pod and Q to one in the last, and builds. The
// resulting world is pure OSPF: no iBGP or LocalPref churn pools, but
// every router is multi-homed, so the link-flap, partial-LAG, and ECMP
// static kinds all apply.
func buildFatTreeWorld(cfg Config, w *world) error {
	const k, half = 4, 2
	n, err := network.LayoutFatTree(cfg.Seed, k)
	if err != nil {
		return err
	}
	pOwner, qOwner := "p0e0", fmt.Sprintf("p%de%d", k-1, half-1)
	if err := addStubLAN(n, pOwner, "lanP", PrefixP); err != nil {
		return err
	}
	if err := addStubLAN(n, qOwner, "lanQ", PrefixQ); err != nil {
		return err
	}
	if err := n.Build(); err != nil {
		return err
	}
	w.net = n
	// Mirror the builder's deterministic construction order.
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			w.internals = append(w.internals, fmt.Sprintf("p%de%d", p, i), fmt.Sprintf("p%da%d", p, i))
		}
	}
	for c := 0; c < half*half; c++ {
		w.internals = append(w.internals, fmt.Sprintf("core%d", c))
	}
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				w.links = append(w.links, [2]string{fmt.Sprintf("p%de%d", p, e), fmt.Sprintf("p%da%d", p, a)})
			}
		}
		for a := 0; a < half; a++ {
			for u := 0; u < half; u++ {
				w.links = append(w.links, [2]string{fmt.Sprintf("p%da%d", p, a), fmt.Sprintf("core%d", a*half+u)})
			}
		}
	}
	w.verifySources = sampleSources(cfg.Seed, []string{pOwner, qOwner}, w.internals, 5)
	return nil
}

// buildISPRRWorld lays out the route-reflector hierarchy (2 mids × 2
// leaves), gives the external provider the destination prefixes as stub
// LANs so walks can actually deliver, and builds. The RR sessions feed the
// session-reset pool, and the PE uplink to the provider is the LocalPref
// rewrite target.
func buildISPRRWorld(cfg Config, w *world) error {
	const mids, leaves = 2, 2
	n, err := network.LayoutISPRR(cfg.Seed, mids, leaves, []netip.Prefix{PrefixP, PrefixQ})
	if err != nil {
		return err
	}
	if err := addStubLAN(n, "ext", "lanP", PrefixP); err != nil {
		return err
	}
	if err := addStubLAN(n, "ext", "lanQ", PrefixQ); err != nil {
		return err
	}
	if err := n.Build(); err != nil {
		return err
	}
	w.net = n
	w.external["ext"] = true
	w.internals = append(w.internals, "top")
	w.rrClients = map[string][]string{}
	for i := 0; i < mids; i++ {
		mid := fmt.Sprintf("mid%d", i)
		w.internals = append(w.internals, mid)
		w.links = append(w.links, [2]string{"top", mid})
		w.ibgp = append(w.ibgp, [2]string{"top", mid})
		w.rrClients["top"] = append(w.rrClients["top"], mid)
		for j := 0; j < leaves; j++ {
			pe := fmt.Sprintf("pe%d-%d", i, j)
			w.internals = append(w.internals, pe)
			w.links = append(w.links, [2]string{mid, pe})
			w.ibgp = append(w.ibgp, [2]string{mid, pe})
			w.rrClients[mid] = append(w.rrClients[mid], pe)
		}
	}
	// Reflector hubs flap their whole client fan in one event; the external
	// provider originates prefix bursts.
	w.rrHubs = append(w.rrHubs, "top")
	for i := 0; i < mids; i++ {
		w.rrHubs = append(w.rrHubs, fmt.Sprintf("mid%d", i))
	}
	w.burstOrigins = append(w.burstOrigins, "ext")
	// The ext-facing eBGP neighbor on pe0-0 carries an explicit LocalPref;
	// its address is the peer across pe0-0's "eth-ext" interface.
	if i := n.Router("pe0-0").Topo.Interface("eth-ext"); i != nil && i.Peer() != nil {
		w.lpTargets = append(w.lpTargets, [2]string{"pe0-0", i.Peer().Addr.String()})
	}
	w.verifySources = sampleSources(cfg.Seed, []string{"pe0-0", "top"}, w.internals, 5)
	return nil
}

// sampleSources draws the oracle source subset: every must-have router
// (destination-stub owners, the provider attach point) plus a seeded
// sample of the rest up to total. The draw uses its own salt so it
// consumes no randomness any other generator depends on.
func sampleSources(seed int64, must []string, pool []string, total int) []string {
	out := append([]string(nil), must...)
	have := map[string]bool{}
	for _, m := range must {
		have[m] = true
	}
	var rest []string
	for _, r := range pool {
		if !have[r] {
			rest = append(rest, r)
		}
	}
	rng := deriveRNG(seed, 0x5ca1e)
	for _, ix := range rng.Perm(len(rest)) {
		if len(out) >= total {
			break
		}
		out = append(out, rest[ix])
	}
	return out
}
