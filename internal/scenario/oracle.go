// The twelve differential oracles checked after every convergence round.

package scenario

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"runtime"
	"sort"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/config"
	"hbverify/internal/dataplane"
	"hbverify/internal/dist"
	"hbverify/internal/eqclass"
	"hbverify/internal/fib"
	"hbverify/internal/hbg"
	"hbverify/internal/hbr"
	"hbverify/internal/localck"
	"hbverify/internal/netsim"
	"hbverify/internal/route"
	"hbverify/internal/serve"
	"hbverify/internal/snapshot"
	"hbverify/internal/verify"
)

// Oracle names, as they appear in failures and artifacts.
const (
	OracleInferRef     = "infer-fast-vs-reference"
	OracleIncremental  = "incremental-vs-full"
	OracleCompaction   = "compaction-vs-full"
	OracleSnapshot     = "snapshot-consistency"
	OracleChecker      = "checker-determinism"
	OracleDist         = "dist-vs-central"
	OracleRepair       = "repair-rollback"
	OracleEqclassDelta = "eqclass-delta-vs-full"
	OracleSymbolic     = "symbolic-vs-probe"
	OracleInternCopy   = "intern-vs-copy"
	OracleServe        = "serve-vs-batch"
	OracleLocalCheck   = "localcheck-superset"
)

// oracleInternVsCopy asserts the interned Adj-RIB-In state matches the wire:
// every path a speaker retains must carry attributes exactly equal to some
// recorded recv-advert from that (router, peer, prefix). The recv I/O is
// captured before the attributes are interned, so a canonical table that
// aliases distinct attribute sets (BugInternAlias) leaves the speaker
// holding attributes no wire message ever carried.
func (h *harness) oracleInternVsCopy(round int) *Failure {
	type recvKey struct {
		router string
		peer   netip.Addr
		prefix netip.Prefix
	}
	recvs := map[recvKey][]route.BGPAttrs{}
	for _, io := range capture.StripOracle(h.w.net.Log.All()) {
		if io.Type == capture.RecvAdvert && io.Proto == route.ProtoBGP {
			k := recvKey{io.Router, io.PeerAddr, io.Prefix}
			recvs[k] = append(recvs[k], io.Attrs)
		}
	}
	for _, r := range h.w.net.Routers() {
		if r.BGP == nil {
			continue
		}
		for _, sess := range r.BGP.Sessions() {
			for _, msg := range r.BGP.AdjIn(sess.PeerAddr) {
				k := recvKey{r.Name, sess.PeerAddr, msg.Prefix}
				matched := false
				for _, a := range recvs[k] {
					if route.AttrsEqual(a, msg.Attrs) {
						matched = true
						break
					}
				}
				if !matched {
					return &Failure{Oracle: OracleInternCopy, Round: round, Detail: fmt.Sprintf(
						"%s adj-in[%v] %v holds attrs {lp=%d path=[%s]} matching none of %d recv-adverts",
						r.Name, sess.PeerAddr, msg.Prefix, msg.Attrs.LocalPref, msg.Attrs.PathString(), len(recvs[k]))}
				}
			}
		}
	}
	return nil
}

// inferRefCap bounds the log suffix the fast-vs-reference oracle compares
// on: the reference implementations are the old quadratic code, and the
// oracle runs every round, so the differential input is capped to keep
// soak runs affordable. Both sides always see the same input.
const inferRefCap = 1500

// oracleInferFastVsReference asserts every shared-index strategy — the
// full §4.2 lineup — produces a graph identical in nodes, edges, and
// per-edge confidences to the preserved pre-index reference
// implementation over the same stripped log.
func (h *harness) oracleInferFastVsReference(round int) *Failure {
	ios := capture.StripOracle(h.w.net.Log.Snapshot())
	if len(ios) > inferRefCap {
		ios = ios[len(ios)-inferRefCap:]
	}
	fast := hbr.Strategies(ios, 0)
	ref := hbr.ReferenceStrategies(ios, 0)
	for i := range fast {
		if d := graphDiff(fast[i].Infer(ios), ref[i].Infer(ios)); d != "" {
			return &Failure{Oracle: OracleInferRef, Round: round, Detail: fmt.Sprintf(
				"strategy %s: %s", fast[i].Name(), d)}
		}
	}
	return nil
}

// graphDiff describes the first node, edge, or confidence difference
// between two graphs, or "" when they are identical. The labels name the
// two sides in the reported detail.
func graphDiff(got, want *hbg.Graph) string { return graphDiffLabeled(got, want, "fast", "reference") }

func graphDiffLabeled(got, want *hbg.Graph, gl, wl string) string {
	gn, wn := nodeIDs(got.Nodes()), nodeIDs(want.Nodes())
	if !reflect.DeepEqual(gn, wn) {
		return fmt.Sprintf("node sets differ: %s=%d %s=%d (first diff: %s)",
			gl, len(gn), wl, len(wn), firstIDDiff(gn, wn))
	}
	ge, we := got.Edges(), want.Edges()
	if !reflect.DeepEqual(ge, we) {
		return fmt.Sprintf("edge sets differ: %s=%d %s=%d (first diff: %s)",
			gl, len(ge), wl, len(we), firstEdgeDiff(ge, we))
	}
	for _, e := range ge {
		if gc, wc := got.Confidence(e.From, e.To), want.Confidence(e.From, e.To); gc != wc {
			return fmt.Sprintf("confidence(%d->%d) differs: %s=%v %s=%v", e.From, e.To, gl, gc, wl, wc)
		}
	}
	return ""
}

// oracleIncrementalVsFull asserts the incremental strategy's graph is
// node- and edge-identical to a fresh full inference over the same
// stripped log.
func (h *harness) oracleIncrementalVsFull(round int) *Failure {
	ios := capture.StripOracle(h.w.net.Log.All())
	got := h.strat.Infer(ios)
	want := h.full.Infer(ios)

	gotNodes, wantNodes := nodeIDs(got.Nodes()), nodeIDs(want.Nodes())
	if !reflect.DeepEqual(gotNodes, wantNodes) {
		return &Failure{Oracle: OracleIncremental, Round: round, Detail: fmt.Sprintf(
			"node sets differ: incremental=%d full=%d (first diff: %s)",
			len(gotNodes), len(wantNodes), firstIDDiff(gotNodes, wantNodes))}
	}
	gotEdges, wantEdges := got.Edges(), want.Edges()
	if !reflect.DeepEqual(gotEdges, wantEdges) {
		return &Failure{Oracle: OracleIncremental, Round: round, Detail: fmt.Sprintf(
			"edge sets differ: incremental=%d full=%d (first diff: %s)",
			len(gotEdges), len(wantEdges), firstEdgeDiff(gotEdges, wantEdges))}
	}
	return nil
}

// compactSlack is the clock-skew allowance of the compaction mirror:
// twice the worlds' worst per-router offset (buildWorld skews clocks by at
// most ±20ms), so the retention floor never evicts an event that a future
// straggler could still form an edge with.
const compactSlack = 40 * time.Millisecond

// compactRootSample bounds how many retained events the compaction oracle
// probes for root-cause equality each round; the oldest are sampled, where
// inherited roots from evicted history are most at risk.
const compactRootSample = 128

// oracleCompactionVsFull mirrors the stream daemon's bounded-memory
// discipline against the live log: newly captured (oracle-stripped)
// events append to a retained window, the window is folded into an
// incremental cache, and events older than the retention floor —
// look-back plus twice the worst clock skew behind the newest capture —
// are evicted with their edges compacted into the cache baseline. The
// cached graph must stay node-, edge-, confidence-, and root-cause
// identical to a fresh full inference over the complete log pruned at the
// same floor. BugSkipFold evicts without folding first — a compactor that
// trims the log ahead of its inference tick — which this oracle must
// catch.
func (h *harness) oracleCompactionVsFull(round int) *Failure {
	all := capture.StripOracle(h.w.net.Log.All())
	h.cwin = append(h.cwin, all[h.cseen:]...)
	h.cseen = len(all)
	if len(h.cwin) == 0 {
		return nil
	}
	if h.cfg.Bug != BugSkipFold {
		h.cinc.Infer(h.cwin) // fold the window before evicting from it
	}
	retain := netsim.VirtualTime(h.cRules.LookbackWindow() + 2*compactSlack)
	floor := h.cwin[len(h.cwin)-1].Time - retain
	cut := 0
	for cut < len(h.cwin)-1 && h.cwin[cut].Time < floor {
		cut++
	}
	if cut > 0 {
		h.cinc.CompactBaseline(h.cwin[cut].ID)
		h.cwin = append(h.cwin[:0], h.cwin[cut:]...)
	}

	got := h.cinc.Infer(h.cwin)
	want := h.cRules.Infer(all)
	want.PruneBefore(got.PrunedBelow())
	if d := graphDiffLabeled(got, want, "window", "full"); d != "" {
		return &Failure{Oracle: OracleCompaction, Round: round, Detail: fmt.Sprintf(
			"compacted window (%d of %d events retained, floor ID %d) diverges from pruned full inference: %s",
			len(h.cwin), len(all), got.PrunedBelow(), d)}
	}
	sample := h.cwin
	if len(sample) > compactRootSample {
		sample = sample[:compactRootSample]
	}
	for _, io := range sample {
		if g, w := got.RootCauses(io.ID), want.RootCauses(io.ID); !reflect.DeepEqual(g, w) {
			return &Failure{Oracle: OracleCompaction, Round: round, Detail: fmt.Sprintf(
				"RootCauses(%d) diverge after compaction: window %v vs full %v", io.ID, g, w)}
		}
	}
	return nil
}

func nodeIDs(ios []capture.IO) []uint64 {
	out := make([]uint64, len(ios))
	for i, io := range ios {
		out[i] = io.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func firstIDDiff(a, b []uint64) string {
	in := func(s []uint64, v uint64) bool {
		i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
		return i < len(s) && s[i] == v
	}
	for _, v := range a {
		if !in(b, v) {
			return fmt.Sprintf("io %d only in incremental", v)
		}
	}
	for _, v := range b {
		if !in(a, v) {
			return fmt.Sprintf("io %d only in full", v)
		}
	}
	return "ordering"
}

func firstEdgeDiff(a, b []hbg.Edge) string {
	key := func(e hbg.Edge) string { return fmt.Sprintf("%d->%d", e.From, e.To) }
	am, bm := map[string]bool{}, map[string]bool{}
	for _, e := range a {
		am[key(e)] = true
	}
	for _, e := range b {
		bm[key(e)] = true
	}
	for k := range am {
		if !bm[k] {
			return k + " only in incremental"
		}
	}
	for k := range bm {
		if !am[k] {
			return k + " only in full"
		}
	}
	return "ordering"
}

// oracleSnapshots checks the §5 snapshot machinery three ways:
// (a) replaying every captured FIB event reproduces the live FIBs exactly
// (no mixed-generation entries can survive a faithful replay);
// (b) a randomly lagged collection cut, extended by ConsistentCollect,
// reaches consistency whenever full-log inference itself is consistent;
// (c) any forwarding loop visible in the collected snapshot existed in
// some instantaneous ground-truth state — phantom loops are forbidden.
func (h *harness) oracleSnapshots(round int) *Failure {
	all := h.w.net.Log.All()
	stripped := capture.StripOracle(all)

	// (a) full-log replay == live FIBs.
	replayed := snapshot.BuildFIBs(stripped)
	live := h.w.net.FIBSnapshot()
	if detail := diffFIBs(replayed, live); detail != "" {
		return &Failure{Oracle: OracleSnapshot, Round: round,
			Detail: "FIB replay diverges from live tables: " + detail}
	}

	// (b) lagged-cut collection reaches consistency.
	rng := deriveRNG(h.cfg.Seed, int64(round)+1)
	cut := snapshot.Cut{}
	now := h.w.net.Sched.Now()
	for _, r := range h.w.net.Routers() {
		if rng.Intn(2) == 0 {
			cut[r.Name] = now.Add(-randDuration(rng, 600))
		}
	}
	collected, _, res := snapshot.ConsistentCollect(stripped, cut, h.full.Infer, h.w.isExternal)
	if !res.Consistent {
		// Tolerate inference misses the full log shows too; only an
		// inconsistency *introduced* by cut collection is a failure.
		if full := snapshot.Check(h.full.Infer(stripped), h.w.isExternal); full.Consistent {
			return &Failure{Oracle: OracleSnapshot, Round: round, Detail: fmt.Sprintf(
				"extended cut stays inconsistent (missing %d, waiting for %v) though the full log is consistent",
				len(res.Missing), res.WaitFor)}
		}
	}

	// (c) no phantom loops. Concrete (unbranched) loops must have existed
	// in some instantaneous ground-truth state — the Fig. 1c guarantee.
	// Loops discovered across ECMP branches get a weaker ground truth:
	// equal-cost sets let a consistent snapshot legitimately combine
	// per-router states from causally-independent events into a cycle no
	// instant exhibited (OSPF floods an LSA before its debounced SPF
	// updates the FIB, so apply-before-advertise does not order them), but
	// every per-router entry on the cycle must still have been real at
	// some instant — a snapshot that fabricates entries is still caught.
	fibs := snapshot.BuildFIBs(collected)
	w := dataplane.NewWalker(h.w.net.Topo, dataplane.SnapshotView(fibs))
	for _, src := range h.w.verifySources {
		for _, p := range []netip.Prefix{PrefixP, PrefixQ} {
			walk := w.ForwardPrefix(src, p)
			if walk.Outcome != dataplane.Looped {
				continue
			}
			dst := dataplane.Representative(p)
			if walk.Branches == 0 && !h.loopWasReal(src, dst) {
				return &Failure{Oracle: OracleSnapshot, Round: round, Detail: fmt.Sprintf(
					"phantom loop in collected snapshot: %s from %s (%s), never present in any instantaneous state",
					p, src, walk)}
			}
			if walk.Branches > 0 && !h.entriesWereReal(fibs, walk.Path, dst) {
				return &Failure{Oracle: OracleSnapshot, Round: round, Detail: fmt.Sprintf(
					"phantom ECMP loop in collected snapshot: %s from %s (%s) traverses an entry no instantaneous state ever held",
					p, src, walk)}
			}
		}
	}
	return nil
}

// fibEventsTrueTime returns the FIB install/remove events in true-time
// order — the ground-truth replay input for the phantom-loop checks.
func (h *harness) fibEventsTrueTime() []capture.IO {
	var evs []capture.IO
	for _, io := range h.w.net.Log.All() {
		if io.Type == capture.FIBInstall || io.Type == capture.FIBRemove {
			evs = append(evs, io)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TrueTime != evs[j].TrueTime {
			return evs[i].TrueTime < evs[j].TrueTime
		}
		return evs[i].ID < evs[j].ID
	})
	return evs
}

// entriesWereReal replays ground truth and reports whether, for every
// router on the walk, the snapshot's covering entry for dst (including its
// full next-hop set) matched the router's live covering entry at some
// instant. It is the per-entry ground truth for symbolic loops.
func (h *harness) entriesWereReal(snap map[string]map[netip.Prefix]fib.Entry, routers []string, dst netip.Addr) bool {
	covering := func(table map[netip.Prefix]fib.Entry) (fib.Entry, bool) {
		var best fib.Entry
		bits := -1
		for p, e := range table {
			if p.Contains(dst) && p.Bits() > bits {
				best, bits = e, p.Bits()
			}
		}
		return best, bits >= 0
	}
	need := map[string]fib.Entry{}
	for _, r := range routers {
		if e, ok := covering(snap[r]); ok {
			need[r] = e
		}
	}
	fibs := map[string]map[netip.Prefix]fib.Entry{}
	for _, r := range h.w.net.Routers() {
		fibs[r.Name] = map[netip.Prefix]fib.Entry{}
	}
	for _, io := range h.fibEventsTrueTime() {
		if io.Type == capture.FIBInstall {
			e := fib.Entry{Prefix: io.Prefix, NextHop: io.NextHop, Proto: io.Proto}
			if len(io.NextHops) > 1 {
				e.NextHops = append([]netip.Addr(nil), io.NextHops...)
			}
			fibs[io.Router][io.Prefix] = e
		} else {
			delete(fibs[io.Router], io.Prefix)
		}
		want, needed := need[io.Router]
		if !needed || !io.Prefix.Contains(dst) {
			continue
		}
		if got, ok := covering(fibs[io.Router]); ok && got.Equal(want) {
			delete(need, io.Router)
			if len(need) == 0 {
				return true
			}
		}
	}
	return len(need) == 0
}

// loopWasReal replays the FIB event stream in true-time order and reports
// whether forwarding from src to dst looped in any instantaneous state.
// It uses the simulator's oracle timestamps on purpose: this is the
// ground-truth side of the differential check.
func (h *harness) loopWasReal(src string, dst netip.Addr) bool {
	evs := h.fibEventsTrueTime()
	fibs := map[string]map[netip.Prefix]fib.Entry{}
	for _, r := range h.w.net.Routers() {
		fibs[r.Name] = map[netip.Prefix]fib.Entry{}
	}
	w := dataplane.NewWalker(h.w.net.Topo, dataplane.SnapshotView(fibs))
	for _, io := range evs {
		if io.Type == capture.FIBInstall {
			e := fib.Entry{Prefix: io.Prefix, NextHop: io.NextHop, Proto: io.Proto}
			if len(io.NextHops) > 1 {
				e.NextHops = append([]netip.Addr(nil), io.NextHops...)
			}
			fibs[io.Router][io.Prefix] = e
		} else {
			delete(fibs[io.Router], io.Prefix)
		}
		// Only events on a prefix covering dst can change dst's forwarding.
		if io.Prefix.Contains(dst) && w.Forward(src, dst).Outcome == dataplane.Looped {
			return true
		}
	}
	return false
}

// diffFIBs compares a replayed FIB set against the live tables on the
// fields a FIB event carries (prefix, next hop, protocol).
func diffFIBs(replayed map[string]map[netip.Prefix]fib.Entry, live map[string]map[netip.Prefix]fib.Entry) string {
	for router, l := range live {
		r := replayed[router]
		if len(r) != len(l) {
			return fmt.Sprintf("%s: %d replayed entries vs %d live", router, len(r), len(l))
		}
		for p, le := range l {
			re, ok := r[p]
			if !ok {
				return fmt.Sprintf("%s: %s live but not replayed", router, p)
			}
			if re.NextHop != le.NextHop || re.Proto != le.Proto || !hopSetsEqual(re.NextHops, le.NextHops) {
				return fmt.Sprintf("%s: %s replayed %v/%v vs live %v/%v",
					router, p, re, re.Proto, le, le.Proto)
			}
		}
	}
	for router, r := range replayed {
		if _, ok := live[router]; !ok && len(r) > 0 {
			return fmt.Sprintf("%s: replayed but no live table", router)
		}
	}
	return ""
}

// policies is the scenario's standing policy set: reachability, loop- and
// blackhole-freedom for both destination prefixes from every internal
// router. Violations are expected under churn — the oracles compare
// verdicts, not validity.
func (h *harness) policies() []verify.Policy {
	var out []verify.Policy
	for _, p := range []netip.Prefix{PrefixP, PrefixQ} {
		out = append(out,
			verify.Policy{Kind: verify.Reachable, Prefix: p},
			verify.Policy{Kind: verify.NoLoop, Prefix: p},
			verify.Policy{Kind: verify.NoBlackhole, Prefix: p})
	}
	return out
}

func (h *harness) liveWalker() *dataplane.Walker {
	tables := map[string]*fib.Table{}
	for _, r := range h.w.net.Routers() {
		tables[r.Name] = r.FIB
	}
	return dataplane.NewWalker(h.w.net.Topo, dataplane.TableView(tables))
}

// oracleCheckerDeterminism asserts verify.Checker reports identical
// violation lists for 1 worker, GOMAXPROCS workers, and a repeated run,
// and that eqclass sharding flags the same (policy, source) pairs.
func (h *harness) oracleCheckerDeterminism(round int) *Failure {
	pols := h.policies()
	walker := h.liveWalker()
	run := func(workers int) verify.Report {
		c := verify.NewChecker(walker, h.w.verifySources)
		c.Workers = workers
		return c.Check(pols)
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial.Violations, parallel.Violations) {
		return &Failure{Oracle: OracleChecker, Round: round, Detail: fmt.Sprintf(
			"worker counts disagree: 1 worker found %d violations, %d workers found %d",
			len(serial.Violations), runtime.GOMAXPROCS(0), len(parallel.Violations))}
	}
	if again := run(1); !reflect.DeepEqual(serial.Violations, again.Violations) {
		return &Failure{Oracle: OracleChecker, Round: round, Detail: fmt.Sprintf(
			"repeated runs disagree: %d vs %d violations", len(serial.Violations), len(again.Violations))}
	}

	sharded := verify.NewChecker(walker, h.w.verifySources)
	sharded.ShardByClasses(eqclass.Compute(h.w.net.FIBSnapshot(), []netip.Prefix{PrefixP, PrefixQ}))
	shardedRep := sharded.Check(pols)
	if d := diffVerdictSets(serial, shardedRep); d != "" {
		return &Failure{Oracle: OracleChecker, Round: round,
			Detail: "eqclass sharding changes verdicts: " + d}
	}
	return nil
}

// diffVerdictSets compares which (policy, source) checks failed; sharded
// walks probe a different representative header, so walk contents may
// legitimately differ while verdicts may not.
func diffVerdictSets(a, b verify.Report) string {
	key := func(v verify.Violation) string { return v.Policy.String() + "|" + v.Source }
	am, bm := map[string]bool{}, map[string]bool{}
	for _, v := range a.Violations {
		am[key(v)] = true
	}
	for _, v := range b.Violations {
		bm[key(v)] = true
	}
	for k := range am {
		if !bm[k] {
			return k + " fails unsharded only"
		}
	}
	for k := range bm {
		if !am[k] {
			return k + " fails sharded only"
		}
	}
	return ""
}

// probeEnumLimit bounds concrete-path enumeration in the symbolic-vs-probe
// oracle; a walk whose DAG exceeds it is skipped rather than compared
// against a truncated aggregate.
const probeEnumLimit = 1024

// oracleSymbolicVsProbe is the set-vs-probe differential: for every
// (source, destination) the harness verifies, it enumerates every concrete
// single-next-hop path through the symbolic walk's ECMP DAG with the probe
// walker, aggregates those per-path outcomes independently, and requires
// the aggregate to reproduce the symbolic walk's outcome and egress set —
// and every probe to traverse only edges the symbolic DAG recorded.
// BugDropEcmpBranch makes the symbolic side silently skip the last member
// of each multi-way branch, which the edge-coverage check must catch.
func (h *harness) oracleSymbolicVsProbe(round int) *Failure {
	sym := h.liveWalker()
	sym.BugDropEcmpBranch = h.cfg.Bug == BugDropEcmpBranch
	probe := h.liveWalker()
	for _, p := range []netip.Prefix{PrefixP, PrefixQ} {
		dst := dataplane.Representative(p)
		for _, src := range h.w.verifySources {
			w := sym.Forward(src, dst)
			probes := probe.ConcretePaths(src, dst, probeEnumLimit)
			if len(probes) >= probeEnumLimit {
				continue // truncated enumeration: aggregate would be partial
			}
			walks := make([]dataplane.Walk, len(probes))
			for i := range probes {
				walks[i] = probes[i].Walk
			}
			aggOut, aggEgress := dataplane.AggregateProbes(walks)
			if aggOut != w.Outcome {
				return &Failure{Oracle: OracleSymbolic, Round: round, Detail: fmt.Sprintf(
					"%s->%s: symbolic outcome %s, but %d concrete probes aggregate to %s",
					src, dst, w.Outcome, len(probes), aggOut)}
			}
			symEgress := w.Egresses
			if symEgress == nil && w.Egress != "" {
				symEgress = []string{w.Egress}
			}
			if !reflect.DeepEqual(append([]string{}, aggEgress...), append([]string{}, symEgress...)) {
				return &Failure{Oracle: OracleSymbolic, Round: round, Detail: fmt.Sprintf(
					"%s->%s: symbolic egresses %v, probes exit at %v", src, dst, symEgress, aggEgress)}
			}
			if w.Branches == 0 && len(probes) != 1 {
				// A branch-dropping symbolic walker degrades a genuine ECMP
				// fan-out into an apparently concrete path; the probe count
				// exposes the branches it never explored.
				return &Failure{Oracle: OracleSymbolic, Round: round, Detail: fmt.Sprintf(
					"%s->%s: symbolic walk claims an unbranched path %v, but %d concrete paths exist",
					src, dst, w.Path, len(probes))}
			}
			if w.Branches > 0 {
				edges := map[[2]string]bool{}
				for _, e := range w.Edges {
					edges[e] = true
				}
				for _, pw := range probes {
					path := pw.Walk.Path
					for i := 0; i+1 < len(path); i++ {
						if !edges[[2]string{path[i], path[i+1]}] {
							return &Failure{Oracle: OracleSymbolic, Round: round, Detail: fmt.Sprintf(
								"%s->%s: probe path %v traverses %s->%s, absent from the symbolic DAG (%d edges, %d branches)",
								src, dst, path, path[i], path[i+1], len(w.Edges), w.Branches)}
						}
					}
				}
			} else if len(probes) == 1 && w.Outcome != dataplane.Looped &&
				!reflect.DeepEqual(probes[0].Walk.Path, w.Path) {
				return &Failure{Oracle: OracleSymbolic, Round: round, Detail: fmt.Sprintf(
					"%s->%s: unbranched symbolic path %v differs from concrete probe %v",
					src, dst, w.Path, probes[0].Walk.Path)}
			}
		}
	}
	return nil
}

// oracleDistVsCentral builds a distributed verification fleet over the
// live network (every router, externals included, so walks traverse the
// same graph the central walker sees) and asserts each distributed walk is
// byte-identical — path, outcome, egress — to the central walker's walk for
// the same (source, destination). BugDropBatch makes the coordinator lose
// every batch bound for one node while still reporting success, which this
// oracle must catch.
func (h *harness) oracleDistVsCentral(round int) *Failure {
	coord, nodes, teardown, err := dist.BuildFleet(h.w.net, nil)
	if err != nil {
		return &Failure{Oracle: OracleDist, Round: round, Detail: fmt.Sprintf("build fleet: %v", err)}
	}
	defer teardown()

	pols := h.policies()
	var opts dist.VerifyOpts
	if h.cfg.Bug == BugDropBatch {
		victim := h.w.verifySources[0]
		opts.DropBatch = func(src string, _ int) bool { return src == victim }
	}
	stats, err := coord.VerifyWith(nodes, pols, h.w.verifySources, opts)
	if err != nil {
		return &Failure{Oracle: OracleDist, Round: round, Detail: fmt.Sprintf("distributed verify: %v", err)}
	}

	// Re-enumerate the jobs exactly as the coordinator does — policies in
	// order, sources sorted — and compare walk-for-walk against the central
	// walker over the identical live FIBs.
	walker := h.liveWalker()
	sources := append([]string(nil), h.w.verifySources...)
	sort.Strings(sources)
	i := 0
	for _, p := range pols {
		srcs := p.Sources
		if len(srcs) == 0 {
			srcs = sources
		}
		for _, src := range srcs {
			if i >= len(stats.Results) {
				return &Failure{Oracle: OracleDist, Round: round, Detail: fmt.Sprintf(
					"distributed round returned %d walks, want %d", len(stats.Results), stats.Walks)}
			}
			got := stats.Results[i]
			i++
			want := walker.Forward(src, dataplane.Representative(p.Prefix))
			if got.Err != "" {
				return &Failure{Oracle: OracleDist, Round: round, Detail: fmt.Sprintf(
					"walk %s->%s failed: %s", src, want.Dst, got.Err)}
			}
			if got.Outcome != want.Outcome || got.Egress != want.Egress ||
				!reflect.DeepEqual(got.Path, want.Path) {
				return &Failure{Oracle: OracleDist, Round: round, Detail: fmt.Sprintf(
					"walk %s->%s diverges: distributed %s via %v (egress %q), central %s via %v (egress %q)",
					src, want.Dst, got.Outcome, got.Path, got.Egress,
					want.Outcome, want.Path, want.Egress)}
			}
		}
	}
	return nil
}

// oracleLocalSuperset is the local-check soundness oracle: per-router
// invariant checks over distance labels must flag a superset of the
// central walker's violations — any (policy, source) check the central
// walker fails must either belong to a forwarding class some router's
// local check flagged, or start at a router the label epoch could not
// vouch for (label Unreachable, the escalate-by-staleness rule). It
// asserts this twice per round: on the converged views, and on
// update-in-flight snapshots where one delivering router's covering
// entries are withdrawn while the labels stay at the pre-update epoch —
// exactly the state a node validates mid-churn, before any relabel.
// BugSkipLocalCheck silences every local checker while leaving the
// labels intact, which the in-flight phase must catch.
func (h *harness) oracleLocalSuperset(round int) *Failure {
	classes := []netip.Prefix{PrefixP, PrefixQ}
	views := map[string]dist.LocalView{}
	var routers []string
	for _, r := range h.w.net.Routers() {
		views[r.Name] = dist.LocalViewOf(r)
		routers = append(routers, r.Name)
	}
	sort.Strings(routers)
	ls := dist.DeriveLabelsFromViews(views, classes, uint64(round)+1)

	if f := h.localSuperset(round, "converged", views, routers, ls); f != nil {
		return f
	}

	// Update-in-flight snapshots: for each class, withdraw the covering
	// entries from the first labeled, non-delivering verify source's view
	// copy and re-check against the unchanged labels.
	for _, class := range classes {
		victim := ""
		for _, src := range h.w.verifySources {
			if ls.Label(src, class) > 0 {
				victim = src
				break
			}
		}
		if victim == "" {
			continue // class delivered locally or unreachable everywhere: no in-flight state to model
		}
		rep := dataplane.Representative(class)
		v := views[victim]
		cut := dist.LocalView{Router: v.Router, Loopback: v.Loopback, Ifaces: v.Ifaces, FIB: map[netip.Prefix]fib.Entry{}}
		for p, e := range v.FIB {
			if p.Contains(rep) {
				continue
			}
			cut.FIB[p] = e
		}
		mutated := map[string]dist.LocalView{}
		for r, mv := range views {
			mutated[r] = mv
		}
		mutated[victim] = cut
		stage := fmt.Sprintf("in-flight %s@%s", class, victim)
		if f := h.localSuperset(round, stage, mutated, routers, ls); f != nil {
			return f
		}
	}
	return nil
}

// localSuperset checks the superset property for one set of views against
// one label epoch: flagged classes from per-router local checks must
// cover every central violation whose source the labels vouch for.
func (h *harness) localSuperset(round int, stage string, views map[string]dist.LocalView, routers []string, ls *localck.LabelSet) *Failure {
	flagged := map[netip.Prefix]bool{}
	for _, r := range routers {
		v := views[r]
		var peers []string
		seen := map[string]bool{}
		for _, i := range v.Ifaces {
			if i.PeerName != "" && i.PeerName != r && !seen[i.PeerName] {
				seen[i.PeerName] = true
				peers = append(peers, i.PeerName)
			}
		}
		ck := localck.Checker{Labels: ls.Node(r, peers), SkipBug: h.cfg.Bug == BugSkipLocalCheck}
		for _, viol := range ck.Check(r, func(c netip.Prefix) localck.ClassState { return v.ClassState(c) }) {
			flagged[viol.Prefix] = true
		}
	}

	fibs := map[string]map[netip.Prefix]fib.Entry{}
	for r, v := range views {
		fibs[r] = v.FIB
	}
	walker := dataplane.NewWalker(h.w.net.Topo, dataplane.SnapshotView(fibs))
	rep := verify.NewChecker(walker, h.w.verifySources).Check(h.policies())
	for _, viol := range rep.Violations {
		class := viol.Policy.Prefix
		if flagged[class] {
			continue
		}
		if ls.Label(viol.Source, class) < 0 {
			continue // source unlabeled at this epoch: escalated by staleness, not by a local flag
		}
		return &Failure{Oracle: OracleLocalCheck, Round: round, Detail: fmt.Sprintf(
			"%s: central violation %s from %s (class %s) not covered: class unflagged by local checks and source labeled %d",
			stage, viol.Policy, viol.Source, class, ls.Label(viol.Source, class))}
	}
	return nil
}

// faultNextHop is an unreachable next hop (TEST-NET-1); a static route
// through it wins FIB arbitration at distance 1 and blackholes the prefix.
var faultNextHop = netip.MustParseAddr("192.0.2.254")

// oracleRepairRollback injects a faulty static route for P on a router
// that can currently reach P, lets the violation be detected and traced
// through the HBG, rolls back the root-cause config version, and asserts
// the network reconverges to the exact pre-fault data plane.
func (h *harness) oracleRepairRollback(round int) *Failure {
	// Let the round's churn age out of the 500ms rule window so the fault's
	// FIB update can only be attributed to the fault config change.
	if err := advance(h.w.net, roundGap); err != nil {
		return &Failure{Oracle: OracleRepair, Round: round, Detail: fmt.Sprintf("advance: %v", err)}
	}
	walker := h.liveWalker()
	live := h.w.net.FIBSnapshot()
	victim := ""
	for _, src := range h.w.verifySources {
		// A router that owns P as a connected stub is immune to the fault:
		// the connected route's distance 0 beats the static's 1.
		if live[src][PrefixP].Proto == route.ProtoConnected {
			continue
		}
		if walker.ForwardPrefix(src, PrefixP).Outcome == dataplane.Delivered {
			victim = src
			break
		}
	}
	if victim == "" {
		return nil // P unreachable everywhere (e.g. shrink stranded a partition): nothing to repair
	}

	pre := h.w.net.FIBSnapshot()
	if _, err := h.w.net.UpdateConfig(victim, "inject faulty static for P", func(c *config.Router) {
		c.Statics = append(c.Statics, config.StaticRoute{Prefix: PrefixP, NextHop: faultNextHop})
	}); err != nil {
		return &Failure{Oracle: OracleRepair, Round: round, Detail: fmt.Sprintf("inject: %v", err)}
	}
	if err := h.w.net.Run(); err != nil {
		return &Failure{Oracle: OracleRepair, Round: round, Detail: fmt.Sprintf("fault convergence: %v", err)}
	}

	pols := []verify.Policy{{Kind: verify.NoBlackhole, Prefix: PrefixP, Sources: []string{victim}}}
	d := h.engine.Detect(pols)
	if d.Report.OK() {
		return &Failure{Oracle: OracleRepair, Round: round,
			Detail: fmt.Sprintf("injected blackhole on %s not detected", victim)}
	}
	if h.cfg.Bug != BugSkipRollback {
		if err := h.engine.Repair(d); err != nil {
			return &Failure{Oracle: OracleRepair, Round: round, Detail: fmt.Sprintf(
				"repair failed on %s: %v (fault=%s, %d roots)", victim, err, d.Fault, len(d.Roots))}
		}
		if !d.RolledBack || d.RollbackRouter != victim {
			return &Failure{Oracle: OracleRepair, Round: round,
				Detail: fmt.Sprintf("rollback targeted %q, want %q", d.RollbackRouter, victim)}
		}
	}
	if err := h.w.net.Run(); err != nil {
		return &Failure{Oracle: OracleRepair, Round: round, Detail: fmt.Sprintf("repair convergence: %v", err)}
	}

	post := h.w.net.FIBSnapshot()
	if detail := diffSnapshots(pre, post); detail != "" {
		return &Failure{Oracle: OracleRepair, Round: round,
			Detail: "data plane differs from pre-fault state after repair: " + detail}
	}
	if rep := verify.NewChecker(h.liveWalker(), h.w.verifySources).Check(pols); !rep.OK() {
		return &Failure{Oracle: OracleRepair, Round: round,
			Detail: "violation persists after repair: " + rep.Violations[0].String()}
	}
	return nil
}

// oracleEqclassDelta asserts the delta verification path is equivalent to
// the from-scratch one: the incremental classifier (fed only FIB updates
// since its seed) must produce the identical class partition to a fresh
// eqclass.Compute over the live FIBs, and the cached-walk checker must
// report the identical violation list to a cold checker with no cache.
func (h *harness) oracleEqclassDelta(round int) *Failure {
	incClasses := h.eqc.Classes()
	fullClasses := eqclass.Compute(h.w.net.FIBSnapshot(), nil)
	if d := diffClasses(incClasses, fullClasses); d != "" {
		return &Failure{Oracle: OracleEqclassDelta, Round: round,
			Detail: "incremental classes diverge from full Compute: " + d}
	}

	pols := h.policies()
	cachedRep := h.cached.Check(pols)
	coldRep := verify.NewChecker(h.liveWalker(), h.w.verifySources).Check(pols)
	if !reflect.DeepEqual(cachedRep.Violations, coldRep.Violations) {
		return &Failure{Oracle: OracleEqclassDelta, Round: round, Detail: fmt.Sprintf(
			"cached-walk checker diverges from cold checker: %d violations (%d walks cached) vs %d",
			len(cachedRep.Violations), cachedRep.Cached, len(coldRep.Violations))}
	}
	return nil
}

// oracleServeVsBatch asserts the concurrent query engine is answer-
// equivalent to batch verification: for every (policy, source) the harness
// checks, the engine's verdict must match a cold Checker's over the same
// live state, and the walk backing the verdict must be byte-identical —
// path, outcome, egress — to the cold walker's, however the plan was
// obtained (shared-cache hit, coalesced flight, pinned bug walk, or fresh
// execution). The engine persists across rounds, so plans cached in
// earlier rounds must have been invalidated by the interleaving churn;
// BugStalePlan pins each plan's first walk forever, which this oracle must
// catch as soon as a queried plan's forwarding actually changes.
func (h *harness) oracleServeVsBatch(round int) *Failure {
	pols := h.policies()
	coldRep := verify.NewChecker(h.liveWalker(), h.w.verifySources).Check(pols)
	coldBad := map[string]bool{}
	for _, v := range coldRep.Violations {
		coldBad[v.Policy.String()+"|"+v.Source] = true
	}
	walker := h.liveWalker()
	for _, pol := range pols {
		for _, src := range h.w.verifySources {
			ans, err := h.serve.Query(serve.Query{Policy: pol, Source: src})
			if err != nil {
				return &Failure{Oracle: OracleServe, Round: round, Detail: fmt.Sprintf(
					"query %s from %s failed: %v", pol, src, err)}
			}
			if bad := coldBad[pol.String()+"|"+src]; ans.OK == bad {
				return &Failure{Oracle: OracleServe, Round: round, Detail: fmt.Sprintf(
					"query %s from %s: serve verdict ok=%v (plan %s, hit=%v), batch check ok=%v",
					pol, src, ans.OK, ans.PlanKey, ans.CacheHit, !bad)}
			}
			want := walker.Forward(src, dataplane.Representative(pol.Prefix))
			if ans.Walk.Outcome != want.Outcome || ans.Walk.Egress != want.Egress ||
				!reflect.DeepEqual(ans.Walk.Path, want.Path) {
				return &Failure{Oracle: OracleServe, Round: round, Detail: fmt.Sprintf(
					"query %s from %s: served walk %s via %v (egress %q, plan %s, hit=%v) diverges from fresh walk %s via %v (egress %q)",
					pol, src, ans.Walk.Outcome, ans.Walk.Path, ans.Walk.Egress, ans.PlanKey, ans.CacheHit,
					want.Outcome, want.Path, want.Egress)}
			}
		}
	}
	return nil
}

// diffClasses compares two class partitions in canonical order.
func diffClasses(a, b []eqclass.Class) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d classes vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Signature != b[i].Signature {
			return fmt.Sprintf("class %d signature %q vs %q", i, a[i].Signature, b[i].Signature)
		}
		if !reflect.DeepEqual(a[i].Prefixes, b[i].Prefixes) {
			return fmt.Sprintf("class %d (%s): %d members vs %d (first incremental member %v)",
				i, a[i].Signature, len(a[i].Prefixes), len(b[i].Prefixes), a[i].Prefixes[0])
		}
	}
	return ""
}

// diffSnapshots compares two live FIB snapshots entry-for-entry.
func diffSnapshots(a, b map[string]map[netip.Prefix]fib.Entry) string {
	for router, at := range a {
		bt := b[router]
		if len(at) != len(bt) {
			return fmt.Sprintf("%s: %d entries before vs %d after", router, len(at), len(bt))
		}
		for p, ae := range at {
			be, ok := bt[p]
			if !ok {
				return fmt.Sprintf("%s: %s missing after repair", router, p)
			}
			if !ae.Equal(be) {
				return fmt.Sprintf("%s: %s was %s, now %s", router, p, ae, be)
			}
		}
	}
	return ""
}

// hopSetsEqual compares two canonical (sorted) next-hop sets.
func hopSetsEqual(a, b []netip.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randDuration draws a uniform duration in [0, maxMillis) milliseconds.
func randDuration(rng *rand.Rand, maxMillis int64) time.Duration {
	return time.Duration(rng.Int63n(maxMillis * int64(time.Millisecond)))
}
