// Scheduler-kernel determinism: the timer wheel must be a drop-in
// replacement for the binary heap, not merely "equivalent up to
// reordering". Both kernels replay the full shape x mix scenario matrix
// and must produce byte-identical capture logs — every I/O, ID, timestamp,
// and cause chain — and byte-identical encoded HBG checkpoints.

package scenario

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"hbverify/internal/hbg"
	"hbverify/internal/hbr"
	"hbverify/internal/netsim"
)

// runKernelTrace replays cfg's materialized schedule (the Run loop minus
// the oracle harness) and returns the rendered capture log plus the
// deterministic encoding of a checkpoint built from full inference over it.
func runKernelTrace(t *testing.T, cfg Config) (string, []byte) {
	t.Helper()
	w, err := buildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.net.Start()
	if err := w.net.Run(); err != nil {
		t.Fatal(err)
	}
	byRound := map[int][]Event{}
	for _, ev := range cfg.Schedule {
		byRound[ev.Round] = append(byRound[ev.Round], ev)
	}
	for round := 0; round < cfg.Rounds; round++ {
		base := w.net.Sched.Now().Add(roundGap)
		for _, ev := range byRound[round] {
			ev := ev
			w.net.Sched.At(base.Add(time.Duration(ev.At)), func() { applyEvent(w, ev) })
		}
		if err := w.net.Run(); err != nil {
			t.Fatal(err)
		}
	}
	ios := w.net.Log.All()
	var sb strings.Builder
	for _, io := range ios {
		fmt.Fprintf(&sb, "%d %s t=%d tt=%d causes=%v attrs=%+v\n",
			io.ID, io.String(), io.Time, io.TrueTime, io.Causes, io.Attrs)
	}
	cp := &hbg.Checkpoint{Graph: hbr.Rules{}.Infer(ios), Retained: ios}
	if len(ios) > 0 {
		cp.LastID = ios[len(ios)-1].ID
		cp.FirstRetainedID = ios[0].ID
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return sb.String(), buf.Bytes()
}

func TestKernelDeterminismAcrossMatrix(t *testing.T) {
	defer func(k netsim.Kernel) { netsim.DefaultKernel = k }(netsim.DefaultKernel)
	for _, shape := range Shapes {
		for _, mix := range Mixes {
			t.Run(shape+"/"+mix, func(t *testing.T) {
				cfg, err := Materialize(Config{Seed: 11, Shape: shape, Mix: mix, Rounds: 2})
				if err != nil {
					t.Fatal(err)
				}
				netsim.DefaultKernel = netsim.KernelWheel
				wheelLog, wheelCkpt := runKernelTrace(t, cfg)
				netsim.DefaultKernel = netsim.KernelHeap
				heapLog, heapCkpt := runKernelTrace(t, cfg)
				if wheelLog != heapLog {
					t.Fatalf("capture logs diverged between kernels:\n%s", firstLogDiff(wheelLog, heapLog))
				}
				if !bytes.Equal(wheelCkpt, heapCkpt) {
					t.Fatal("encoded HBG checkpoints diverged between kernels")
				}
			})
		}
	}
}

func firstLogDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  wheel: %s\n  heap:  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: wheel %d lines, heap %d lines", len(al), len(bl))
}
