// World generation: seeded random topologies (ring / mesh / fat-tree) with
// one of four protocol mixes, built on the same substrate as the
// hand-written scenarios in internal/network.

package scenario

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"hbverify/internal/config"
	"hbverify/internal/network"
)

// Shapes are the supported topology shapes. The first three are the
// seed-sized classics; "fattree-k4" and "isp-rr" wire the scale builders
// from internal/network (a 20-router 4-ary fat-tree, an 8-router BGP
// route-reflector hierarchy) into the harness as explicit smoke-tier
// shapes.
var Shapes = []string{"ring", "mesh", "fattree", "fattree-k4", "isp-rr"}

// randomShapes is the pool Normalize draws from when Config.Shape is
// unset. It is pinned to the original three shapes so every existing
// (seed, schedule) artifact replays identically; the scale shapes are
// opt-in via an explicit Shape.
var randomShapes = Shapes[:3]

// Mixes are the supported protocol mixes. "ospf+bgp" is the paper-style
// arrangement: an OSPF underlay, an iBGP full mesh, and two external
// providers; the others are pure-IGP networks with the destination
// prefixes attached as stub LANs.
var Mixes = []string{"ospf+bgp", "ospf", "rip", "eigrp"}

// PrefixP and PrefixQ are the destination prefixes every generated
// scenario verifies.
var (
	PrefixP = netip.MustParsePrefix("203.0.113.0/24")
	PrefixQ = netip.MustParsePrefix("198.51.100.0/24")
)

// world carries the generated network plus the handles the schedule
// generator and the oracles need.
type world struct {
	net       *network.Network
	internals []string
	external  map[string]bool
	// links lists the internal-internal links eligible for flap churn.
	links [][2]string
	// ibgp lists iBGP session pairs eligible for resets.
	ibgp [][2]string
	// lpTargets lists (router, neighborAddr) pairs whose LocalPref a
	// config-edit event may rewrite.
	lpTargets [][2]string
	// staticNH maps each internal router to a reachable next-hop address
	// (a directly connected peer) for generated static routes.
	staticNH map[string]string
	// staticNHs maps each internal router to every directly connected peer
	// address, the draw pool for ECMP static next-hop sets.
	staticNHs map[string][]string
	// lagLinks lists internal links whose loss narrows an equal-cost group
	// without stranding an endpoint (both ends keep another link) — the
	// partial-LAG failure targets.
	lagLinks [][2]string
	// ecmpRouters lists internal routers with at least two connected peers,
	// eligible for ECMP static churn.
	ecmpRouters []string
	// rrHubs lists route-reflector hubs whose whole client session fan can
	// flap at once, and rrClients their per-hub client sets — populated
	// only by the isp-rr world, the draw pool for rr-session-flap churn.
	rrHubs    []string
	rrClients map[string][]string
	// burstOrigins lists BGP speakers eligible to originate prefix-burst
	// advertisements (batch Networks adds followed by withdrawals).
	burstOrigins []string
	// verifySources is the router subset the walk-driven oracles source
	// from. The classic shapes verify from every internal router; the scale
	// shapes sample a seeded subset (always including the destination-stub
	// owners) so a full differential round stays smoke-affordable.
	verifySources []string
}

func (w *world) isExternal(name string) bool { return w.external[name] }

// buildWorld constructs (but does not start) the network for cfg. The
// construction consumes no scheduler randomness beyond the per-router
// clock-model seeds, and link/session jitter stays zero, so a (seed,
// schedule) pair replays to an identical capture log.
func buildWorld(cfg Config) (*world, error) {
	if cfg.Shape == "fattree-k4" || cfg.Shape == "isp-rr" {
		w, err := buildScaleWorld(cfg)
		if err != nil {
			return nil, err
		}
		finishWorld(w)
		return w, nil
	}
	n := cfg.Routers
	if n < 4 {
		return nil, fmt.Errorf("scenario: need at least 4 routers, have %d", n)
	}
	net := network.New(cfg.Seed)
	w := &world{net: net, external: map[string]bool{},
		staticNH: map[string]string{}, staticNHs: map[string][]string{}}

	name := func(i int) string { return fmt.Sprintf("x%d", i) }
	lb := func(i int) string { return fmt.Sprintf("10.255.%d.1", i) }
	for i := 0; i < n; i++ {
		// Deterministic skew, no jitter: observed per-router order equals
		// true order, which keeps replays exact while still exercising the
		// skew-tolerant cross-router matching.
		skew := time.Duration(i%5-2) * 10 * time.Millisecond
		if _, err := net.AddRouter(name(i), lb(i), skew, 0); err != nil {
			return nil, err
		}
		w.internals = append(w.internals, name(i))
	}

	var pairs [][2]int
	switch cfg.Shape {
	case "ring":
		for i := 0; i < n; i++ {
			pairs = append(pairs, [2]int{i, (i + 1) % n})
		}
	case "mesh":
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	case "fattree":
		// Two-level fat-tree slice: x0/x1 form the core; every other
		// router is an edge multi-homed to both cores.
		pairs = append(pairs, [2]int{0, 1})
		for i := 2; i < n; i++ {
			pairs = append(pairs, [2]int{0, i}, [2]int{1, i})
		}
	default:
		return nil, fmt.Errorf("scenario: unknown shape %q", cfg.Shape)
	}

	linkIdx := 0
	addLink := func(a, b string) error {
		subnet := fmt.Sprintf("10.%d.%d.0/30", linkIdx/250, linkIdx%250)
		linkIdx++
		p := netip.MustParsePrefix(subnet)
		a4 := p.Addr().As4()
		aAddr := netip.AddrFrom4([4]byte{a4[0], a4[1], a4[2], a4[3] + 1})
		bAddr := netip.AddrFrom4([4]byte{a4[0], a4[1], a4[2], a4[3] + 2})
		_, err := net.Topo.AddLink(network.LinkSpecOf(a, b, subnet, aAddr, bAddr))
		return err
	}
	for _, pr := range pairs {
		a, b := name(pr[0]), name(pr[1])
		if err := addLink(a, b); err != nil {
			return nil, err
		}
		w.links = append(w.links, [2]string{a, b})
	}

	switch cfg.Mix {
	case "ospf+bgp":
		if err := buildBGPMix(cfg, w); err != nil {
			return nil, err
		}
	case "ospf", "rip", "eigrp":
		if err := buildIGPMix(cfg, w); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("scenario: unknown mix %q", cfg.Mix)
	}

	if err := net.Build(); err != nil {
		return nil, err
	}
	finishWorld(w)
	return w, nil
}

// finishWorld derives the post-Build churn pools every shape shares:
// static next hops, ECMP routers, partial-LAG links, and the oracle
// source set (all internals unless the shape sampled a subset).
func finishWorld(w *world) {
	// A valid next hop for generated statics: the peer address across each
	// router's first link. staticNHs keeps the full peer pool for ECMP
	// static sets.
	for _, r := range w.net.Routers() {
		if w.external[r.Name] {
			continue
		}
		for _, i := range r.Topo.Interfaces() {
			if i.Link != nil {
				if w.staticNH[r.Name] == "" {
					w.staticNH[r.Name] = i.Peer().Addr.String()
				}
				w.staticNHs[r.Name] = append(w.staticNHs[r.Name], i.Peer().Addr.String())
			}
		}
		if len(w.staticNHs[r.Name]) >= 2 {
			w.ecmpRouters = append(w.ecmpRouters, r.Name)
		}
	}
	// Partial-LAG targets: internal links both of whose endpoints keep at
	// least one other internal link when this one fails.
	degree := map[string]int{}
	for _, l := range w.links {
		degree[l[0]]++
		degree[l[1]]++
	}
	for _, l := range w.links {
		if degree[l[0]] >= 2 && degree[l[1]] >= 2 {
			w.lagLinks = append(w.lagLinks, l)
		}
	}
	if w.verifySources == nil {
		w.verifySources = w.internals
	}
}

// buildIGPMix configures a single-IGP network with P and Q as stub LANs on
// the first and last routers.
func buildIGPMix(cfg Config, w *world) error {
	n := w.net
	stub := func(router, iface string, p netip.Prefix) error {
		a4 := p.Addr().As4()
		addr := netip.AddrFrom4([4]byte{a4[0], a4[1], a4[2], 1})
		_, err := n.Topo.AddStub(router, iface, addr, p)
		return err
	}
	if err := stub(w.internals[0], "lanP", PrefixP); err != nil {
		return err
	}
	if err := stub(w.internals[len(w.internals)-1], "lanQ", PrefixQ); err != nil {
		return err
	}
	for _, name := range w.internals {
		rc := &config.Router{}
		switch cfg.Mix {
		case "ospf":
			rc.OSPF = config.OSPFConfig{Enabled: true}
		case "rip":
			rc.RIP = config.RIPConfig{Enabled: true}
		case "eigrp":
			rc.EIGRP = config.EIGRPConfig{Enabled: true, ASN: 1}
		}
		if err := n.Configure(name, rc); err != nil {
			return err
		}
	}
	return nil
}

// buildBGPMix configures the paper-style arrangement: OSPF on the internal
// links, an iBGP full mesh over loopbacks, and two external providers.
// e1 (AS 100) attaches to x0 and originates P and Q; e2 (AS 200) attaches
// to the middle router and originates P, so P is multi-homed and Q is
// single-homed.
func buildBGPMix(cfg Config, w *world) error {
	n := w.net
	mid := w.internals[len(w.internals)/2]
	ext := []struct {
		name     string
		lb       string
		asn      uint32
		attach   string
		subnet   string
		networks []netip.Prefix
		lp       uint32
	}{
		{"e1", "100.0.0.1", 100, w.internals[0], "10.200.0.0/30", []netip.Prefix{PrefixP, PrefixQ}, 20},
		{"e2", "200.0.0.1", 200, mid, "10.200.1.0/30", []netip.Prefix{PrefixP}, 30},
	}
	addrIn := func(subnet string, host byte) netip.Addr {
		p := netip.MustParsePrefix(subnet)
		a4 := p.Addr().As4()
		return netip.AddrFrom4([4]byte{a4[0], a4[1], a4[2], a4[3] + host})
	}

	type uplink struct {
		extAddr netip.Addr
		asn     uint32
		lp      uint32
	}
	uplinks := map[string]uplink{}
	for i, e := range ext {
		if _, err := n.AddRouter(e.name, e.lb, 0, 0); err != nil {
			return err
		}
		w.external[e.name] = true
		intAddr, extAddr := addrIn(e.subnet, 1), addrIn(e.subnet, 2)
		if _, err := n.Topo.AddLink(network.LinkSpecOf(e.attach, e.name, e.subnet, intAddr, extAddr)); err != nil {
			return err
		}
		// The provider owns the prefixes it originates as stub LANs.
		for j, p := range e.networks {
			a4 := p.Addr().As4()
			stubAddr := netip.AddrFrom4([4]byte{a4[0], a4[1], a4[2], byte(i + 1)})
			if _, err := n.Topo.AddStub(e.name, fmt.Sprintf("lan%d", j), stubAddr, p); err != nil {
				return err
			}
		}
		ecfg := &config.Router{BGP: &config.BGPConfig{
			ASN: e.asn, RouterID: netip.MustParseAddr(e.lb),
			Neighbors: []config.Neighbor{{Addr: intAddr, RemoteAS: 65000}},
			Networks:  e.networks,
		}}
		if err := n.Configure(e.name, ecfg); err != nil {
			return err
		}
		uplinks[e.attach] = uplink{extAddr: extAddr, asn: e.asn, lp: e.lp}
	}

	for i, name := range w.internals {
		loop := fmt.Sprintf("10.255.%d.1", i)
		cfgR := &config.Router{BGP: &config.BGPConfig{
			ASN: 65000, RouterID: netip.MustParseAddr(loop),
		}}
		for j, peer := range w.internals {
			if peer == name {
				continue
			}
			cfgR.BGP.Neighbors = append(cfgR.BGP.Neighbors, config.Neighbor{
				Addr: netip.MustParseAddr(fmt.Sprintf("10.255.%d.1", j)), RemoteAS: 65000,
			})
			if name < peer {
				w.ibgp = append(w.ibgp, [2]string{name, peer})
			}
		}
		var ospfIfaces []string
		for _, l := range w.links {
			if l[0] == name {
				ospfIfaces = append(ospfIfaces, "eth-"+l[1])
			}
			if l[1] == name {
				ospfIfaces = append(ospfIfaces, "eth-"+l[0])
			}
		}
		cfgR.OSPF = config.OSPFConfig{Enabled: true, Interfaces: ospfIfaces}
		if up, ok := uplinks[name]; ok {
			cfgR.BGP.Neighbors = append(cfgR.BGP.Neighbors, config.Neighbor{
				Addr: up.extAddr, RemoteAS: up.asn, LocalPref: up.lp,
			})
			w.lpTargets = append(w.lpTargets, [2]string{name, up.extAddr.String()})
		}
		if err := n.Configure(name, cfgR); err != nil {
			return err
		}
	}
	return nil
}

// deriveRNG returns the deterministic generator used to fill unset Config
// fields and the churn schedule.
func deriveRNG(seed int64, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + salt))
}
