// Churn schedules: the randomized event sequences a scenario injects
// between convergence rounds, and their application to a running network.
// Events are plain JSON-friendly data so a failure artifact replays
// byte-identically from the (seed, schedule) pair alone.

package scenario

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"hbverify/internal/config"
)

// Event kinds.
const (
	KindLinkDown     = "link-down"
	KindLinkUp       = "link-up"
	KindSessionReset = "session-reset"
	KindConfigLP     = "config-lp"
	KindStaticAdd    = "static-add"
	KindStaticDel    = "static-del"
	// KindLagDown / KindLagUp flap one member of an ECMP fan-out — a link
	// whose loss narrows an equal-cost group rather than partitioning the
	// graph (a partial-LAG failure). Mechanically a link flap; the draw is
	// biased to multi-homed links so symbolic walks see set churn.
	KindLagDown = "lag-down"
	KindLagUp   = "lag-up"
	// KindEcmpStatic installs (or rewrites in place) a static route whose
	// next-hop set spans a random subset of the router's connected peers.
	// Re-draws across rounds widen and narrow the set — hash-polarization
	// churn — exercising withdraw-one-member transitions end to end.
	KindEcmpStatic = "ecmp-static"
	// KindRRFlap resets every iBGP client session of one route-reflector
	// hub at once — a reflector process restart as its clients see it. A
	// names the hub; Peers lists the clients whose sessions drop. Only the
	// isp-rr world populates the hub pool.
	KindRRFlap = "rr-session-flap"
	// KindPrefixBurst / KindPrefixWithdraw originate and then retract a
	// batch of BGP Networks on one speaker — a flap of a customer block
	// arriving as a burst advertisement. A names the origin, Prefix the
	// first /24, Value how many consecutive /24s the burst spans.
	KindPrefixBurst    = "prefix-burst"
	KindPrefixWithdraw = "prefix-withdraw"
)

// Event is one scheduled churn action. A and B name routers (for link and
// session events) or router and neighbor address (for config-lp); At is
// the virtual-time offset from the round's start.
type Event struct {
	Round    int      `json:"round"`
	At       int64    `json:"at"` // nanoseconds into the round
	Kind     string   `json:"kind"`
	A        string   `json:"a,omitempty"`
	B        string   `json:"b,omitempty"`
	Prefix   string   `json:"prefix,omitempty"`
	NextHop  string   `json:"nextHop,omitempty"`
	NextHops []string `json:"nextHops,omitempty"`
	Value    uint32   `json:"value,omitempty"`
	// Peers lists the client routers of an rr-session-flap hub.
	Peers []string `json:"peers,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("r%d+%s %s", e.Round, time.Duration(e.At), e.Kind)
	if e.A != "" {
		s += " " + e.A
	}
	if e.B != "" {
		s += "/" + e.B
	}
	if e.Prefix != "" {
		s += " " + e.Prefix
	}
	if e.NextHop != "" {
		s += " via " + e.NextHop
	}
	for i, nh := range e.NextHops {
		if i == 0 {
			s += " via "
		} else {
			s += "|"
		}
		s += nh
	}
	if e.Kind == KindConfigLP {
		s += fmt.Sprintf(" lp=%d", e.Value)
	}
	if e.Kind == KindPrefixBurst || e.Kind == KindPrefixWithdraw {
		s += fmt.Sprintf(" x%d", e.Value)
	}
	for i, p := range e.Peers {
		if i == 0 {
			s += " clients "
		} else {
			s += ","
		}
		s += p
	}
	return s
}

// generateSchedule draws a churn schedule for cfg over the given world.
// Link flaps emit a down/up pair so greedy shrinking can strand a link in
// either state; session resets and config edits are single events. The
// draw depends only on (Seed, Rounds) and the (deterministic) world.
func generateSchedule(cfg Config, w *world) []Event {
	rng := deriveRNG(cfg.Seed, 0x5eed)
	evs := []Event{}
	var liveStatics []Event
	burstOctet := 0 // running third-octet cursor so bursts never collide
	for round := 0; round < cfg.Rounds; round++ {
		for k := 0; k < 1+rng.Intn(2); k++ {
			switch pickKind(rng, w, liveStatics) {
			case KindLinkDown:
				l := w.links[rng.Intn(len(w.links))]
				down := rng.Int63n(int64(100 * time.Millisecond))
				up := down + int64(200*time.Millisecond) + rng.Int63n(int64(300*time.Millisecond))
				evs = append(evs,
					Event{Round: round, At: down, Kind: KindLinkDown, A: l[0], B: l[1]},
					Event{Round: round, At: up, Kind: KindLinkUp, A: l[0], B: l[1]})
			case KindSessionReset:
				p := w.ibgp[rng.Intn(len(w.ibgp))]
				evs = append(evs, Event{
					Round: round, At: rng.Int63n(int64(200 * time.Millisecond)),
					Kind: KindSessionReset, A: p[0], B: p[1]})
			case KindConfigLP:
				t := w.lpTargets[rng.Intn(len(w.lpTargets))]
				evs = append(evs, Event{
					Round: round, At: rng.Int63n(int64(200 * time.Millisecond)),
					Kind: KindConfigLP, A: t[0], B: t[1], Value: uint32(10 + rng.Intn(190))})
			case KindStaticAdd:
				router := w.internals[rng.Intn(len(w.internals))]
				ev := Event{
					Round: round, At: rng.Int63n(int64(200 * time.Millisecond)),
					Kind: KindStaticAdd, A: router,
					Prefix:  fmt.Sprintf("198.18.%d.0/24", round%250),
					NextHop: w.staticNH[router],
				}
				evs = append(evs, ev)
				liveStatics = append(liveStatics, ev)
			case KindStaticDel:
				i := rng.Intn(len(liveStatics))
				add := liveStatics[i]
				liveStatics = append(liveStatics[:i], liveStatics[i+1:]...)
				evs = append(evs, Event{
					Round: round, At: rng.Int63n(int64(200 * time.Millisecond)),
					Kind: KindStaticDel, A: add.A, Prefix: add.Prefix})
			case KindLagDown:
				l := w.lagLinks[rng.Intn(len(w.lagLinks))]
				down := rng.Int63n(int64(100 * time.Millisecond))
				up := down + int64(200*time.Millisecond) + rng.Int63n(int64(300*time.Millisecond))
				evs = append(evs,
					Event{Round: round, At: down, Kind: KindLagDown, A: l[0], B: l[1]},
					Event{Round: round, At: up, Kind: KindLagUp, A: l[0], B: l[1]})
			case KindRRFlap:
				hub := w.rrHubs[rng.Intn(len(w.rrHubs))]
				evs = append(evs, Event{
					Round: round, At: rng.Int63n(int64(200 * time.Millisecond)),
					Kind: KindRRFlap, A: hub,
					Peers: append([]string(nil), w.rrClients[hub]...)})
			case KindPrefixBurst:
				origin := w.burstOrigins[rng.Intn(len(w.burstOrigins))]
				count := uint32(2 + rng.Intn(3))
				base := fmt.Sprintf("198.20.%d.0/24", burstOctet%250)
				burstOctet += int(count)
				at := rng.Int63n(int64(100 * time.Millisecond))
				withdraw := at + int64(200*time.Millisecond) + rng.Int63n(int64(300*time.Millisecond))
				evs = append(evs,
					Event{Round: round, At: at, Kind: KindPrefixBurst, A: origin, Prefix: base, Value: count},
					Event{Round: round, At: withdraw, Kind: KindPrefixWithdraw, A: origin, Prefix: base, Value: count})
			case KindEcmpStatic:
				router := w.ecmpRouters[rng.Intn(len(w.ecmpRouters))]
				peers := w.staticNHs[router]
				width := 1 + rng.Intn(len(peers))
				perm := rng.Perm(len(peers))[:width]
				hops := make([]string, 0, width)
				for _, ix := range perm {
					hops = append(hops, peers[ix])
				}
				ev := Event{
					Round: round, At: rng.Int63n(int64(200 * time.Millisecond)),
					Kind: KindEcmpStatic, A: router,
					Prefix:   fmt.Sprintf("198.19.%d.0/24", rng.Intn(4)),
					NextHops: hops,
				}
				evs = append(evs, ev)
				liveStatics = append(liveStatics, ev)
			}
		}
	}
	return evs
}

// pickKind draws the next event kind from the kinds the world supports.
func pickKind(rng *rand.Rand, w *world, liveStatics []Event) string {
	kinds := []string{KindLinkDown, KindStaticAdd}
	if len(w.ibgp) > 0 {
		kinds = append(kinds, KindSessionReset)
	}
	if len(w.lpTargets) > 0 {
		kinds = append(kinds, KindConfigLP)
	}
	if len(liveStatics) > 0 {
		kinds = append(kinds, KindStaticDel)
	}
	if len(w.lagLinks) > 0 {
		kinds = append(kinds, KindLagDown)
	}
	if len(w.ecmpRouters) > 0 {
		kinds = append(kinds, KindEcmpStatic)
	}
	// The reflector and burst pools are populated only by the isp-rr world,
	// so the classic shapes' kind list — and their seeded draws — are
	// byte-identical to before these kinds existed.
	if len(w.rrHubs) > 0 {
		kinds = append(kinds, KindRRFlap)
	}
	if len(w.burstOrigins) > 0 {
		kinds = append(kinds, KindPrefixBurst)
	}
	return kinds[rng.Intn(len(kinds))]
}

// burstPrefixes expands a burst event into its member /24s: count
// consecutive third octets starting at the base prefix's, wrapping at 250
// to match the generator's cursor arithmetic.
func burstPrefixes(base string, count uint32) []netip.Prefix {
	bp, err := netip.ParsePrefix(base)
	if err != nil || !bp.Addr().Is4() {
		return nil
	}
	a4 := bp.Addr().As4()
	out := make([]netip.Prefix, 0, count)
	for i := uint32(0); i < count; i++ {
		o := a4
		o[2] = byte((uint32(a4[2]) + i) % 250)
		out = append(out, netip.PrefixFrom(netip.AddrFrom4(o), bp.Bits()))
	}
	return out
}

// applyEvent performs one churn action immediately. Events made redundant
// by shrinking (a link already in the requested state, a missing static)
// are no-ops, never errors, so every schedule subset stays runnable.
func applyEvent(w *world, ev Event) {
	switch ev.Kind {
	case KindLinkDown, KindLagDown:
		_, _ = w.net.SetLinkUp(ev.A, ev.B, false)
	case KindLinkUp, KindLagUp:
		_, _ = w.net.SetLinkUp(ev.A, ev.B, true)
	case KindSessionReset:
		_ = w.net.ResetBGPSession(ev.A, ev.B)
	case KindRRFlap:
		for _, client := range ev.Peers {
			_ = w.net.ResetBGPSession(ev.A, client)
		}
	case KindPrefixBurst, KindPrefixWithdraw:
		prefixes := burstPrefixes(ev.Prefix, ev.Value)
		if len(prefixes) == 0 {
			return
		}
		verb := "advertise"
		if ev.Kind == KindPrefixWithdraw {
			verb = "withdraw"
		}
		_, _ = w.net.UpdateConfig(ev.A, fmt.Sprintf("%s burst %s x%d", verb, ev.Prefix, len(prefixes)),
			func(c *config.Router) {
				if c.BGP == nil {
					return
				}
				member := map[netip.Prefix]bool{}
				for _, p := range prefixes {
					member[p] = true
				}
				if ev.Kind == KindPrefixWithdraw {
					out := c.BGP.Networks[:0]
					for _, p := range c.BGP.Networks {
						if !member[p] {
							out = append(out, p)
						}
					}
					c.BGP.Networks = out
					return
				}
				for _, p := range prefixes {
					have := false
					for _, q := range c.BGP.Networks {
						if q == p {
							have = true
							break
						}
					}
					if !have {
						c.BGP.Networks = append(c.BGP.Networks, p)
					}
				}
			})
	case KindConfigLP:
		addr, err := netip.ParseAddr(ev.B)
		if err != nil {
			return
		}
		_, _ = w.net.UpdateConfig(ev.A, fmt.Sprintf("set lp %d on %s", ev.Value, ev.B), func(c *config.Router) {
			if c.BGP == nil {
				return
			}
			if nb := c.BGP.Neighbor(addr); nb != nil {
				nb.LocalPref = ev.Value
			}
		})
	case KindStaticAdd:
		p, err1 := netip.ParsePrefix(ev.Prefix)
		nh, err2 := netip.ParseAddr(ev.NextHop)
		if err1 != nil || err2 != nil {
			return
		}
		_, _ = w.net.UpdateConfig(ev.A, "add static "+ev.Prefix, func(c *config.Router) {
			for i := range c.Statics {
				if c.Statics[i].Prefix == p {
					c.Statics[i].NextHop = nh
					return
				}
			}
			c.Statics = append(c.Statics, config.StaticRoute{Prefix: p, NextHop: nh})
		})
	case KindEcmpStatic:
		p, err := netip.ParsePrefix(ev.Prefix)
		if err != nil {
			return
		}
		var hops []netip.Addr
		for _, s := range ev.NextHops {
			if a, err := netip.ParseAddr(s); err == nil {
				hops = append(hops, a)
			}
		}
		if len(hops) == 0 {
			return
		}
		_, _ = w.net.UpdateConfig(ev.A, fmt.Sprintf("ecmp static %s width %d", ev.Prefix, len(hops)),
			func(c *config.Router) {
				st := config.StaticRoute{Prefix: p, NextHop: hops[0], NextHops: hops}
				for i := range c.Statics {
					if c.Statics[i].Prefix == p {
						c.Statics[i] = st
						return
					}
				}
				c.Statics = append(c.Statics, st)
			})
	case KindStaticDel:
		p, err := netip.ParsePrefix(ev.Prefix)
		if err != nil {
			return
		}
		_, _ = w.net.UpdateConfig(ev.A, "del static "+ev.Prefix, func(c *config.Router) {
			out := c.Statics[:0]
			for _, st := range c.Statics {
				if st.Prefix != p {
					out = append(out, st)
				}
			}
			c.Statics = out
		})
	}
}
