package capture

import (
	"net/netip"
	"testing"
	"time"

	"hbverify/internal/netsim"
	"hbverify/internal/route"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestTypeClassification(t *testing.T) {
	inputs := []Type{ConfigChange, LinkUp, LinkDown, RecvAdvert, RecvWithdraw}
	outputs := []Type{SendAdvert, SendWithdraw, RIBInstall, RIBRemove, FIBInstall, FIBRemove}
	for _, ty := range inputs {
		if !ty.IsInput() || ty.IsOutput() {
			t.Fatalf("%v misclassified", ty)
		}
	}
	for _, ty := range outputs {
		if ty.IsInput() || !ty.IsOutput() {
			t.Fatalf("%v misclassified", ty)
		}
	}
	if SoftReconfig.IsInput() || SoftReconfig.IsOutput() {
		t.Fatal("SoftReconfig is neither input nor output")
	}
}

func TestTypeNamesRoundTrip(t *testing.T) {
	for ty := ConfigChange; ty <= SoftReconfig; ty++ {
		got, ok := ParseType(ty.String())
		if !ok || got != ty {
			t.Fatalf("round trip %v", ty)
		}
	}
	if _, ok := ParseType("bogus"); ok {
		t.Fatal("bogus parsed")
	}
	if Type(200).String() != "io(200)" {
		t.Fatal("out-of-range name")
	}
}

func TestIOStringStyles(t *testing.T) {
	cases := []struct {
		io   IO
		want string
	}{
		{IO{Router: "r2", Type: ConfigChange, Detail: "lp=10"}, "[r2 config change: lp=10]"},
		{IO{Router: "r2", Type: SoftReconfig}, "[r2 soft reconfiguration]"},
		{IO{Router: "r1", Type: RecvAdvert, Proto: route.ProtoBGP, Prefix: pfx("10.0.0.0/8"), Peer: "r2"},
			"[r1 recv-advert bgp 10.0.0.0/8 from r2]"},
		{IO{Router: "r2", Type: SendWithdraw, Proto: route.ProtoBGP, Prefix: pfx("10.0.0.0/8"), Peer: "r3"},
			"[r2 send-withdraw bgp 10.0.0.0/8 to r3]"},
		{IO{Router: "r2", Type: RIBInstall, Proto: route.ProtoBGP, Prefix: pfx("10.0.0.0/8")},
			"[r2 rib-install bgp 10.0.0.0/8 via direct]"},
		{IO{Router: "r2", Type: FIBInstall, Prefix: pfx("10.0.0.0/8"), NextHop: netip.MustParseAddr("192.0.2.1")},
			"[r2 fib-install 10.0.0.0/8 via 192.0.2.1]"},
		{IO{Router: "r2", Type: LinkDown, Detail: "eth0"}, "[r2 link-down eth0]"},
	}
	for _, c := range cases {
		if got := c.io.String(); got != c.want {
			t.Fatalf("String = %q, want %q", got, c.want)
		}
	}
}

func TestRecorderAssignsIDsAndTimes(t *testing.T) {
	s := netsim.NewScheduler(1)
	log := NewLog()
	rec := NewRecorder(log, "r1", s, nil)
	var first, second IO
	s.At(netsim.Duration(5*time.Millisecond), func() {
		first = rec.Record(IO{Type: RecvAdvert, Proto: route.ProtoBGP, Prefix: pfx("10.0.0.0/8")})
	})
	s.At(netsim.Duration(9*time.Millisecond), func() {
		second = rec.Record(IO{Type: RIBInstall, Proto: route.ProtoBGP, Prefix: pfx("10.0.0.0/8")})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if first.ID != 1 || second.ID != 2 {
		t.Fatalf("IDs = %d,%d", first.ID, second.ID)
	}
	if first.Router != "r1" {
		t.Fatalf("router = %q", first.Router)
	}
	if first.TrueTime != netsim.Duration(5*time.Millisecond) || first.Time != first.TrueTime {
		t.Fatalf("times = %v %v", first.Time, first.TrueTime)
	}
	if log.Len() != 2 {
		t.Fatalf("log len = %d", log.Len())
	}
}

func TestRecorderClockSkew(t *testing.T) {
	s := netsim.NewScheduler(1)
	log := NewLog()
	clock := netsim.NewClockModel(2*time.Second, 0, 1)
	rec := NewRecorder(log, "r1", s, clock)
	var io IO
	s.At(0, func() { io = rec.Record(IO{Type: ConfigChange}) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if io.TrueTime != 0 {
		t.Fatalf("TrueTime = %v", io.TrueTime)
	}
	if io.Time != netsim.Duration(2*time.Second) {
		t.Fatalf("observed time = %v", io.Time)
	}
}

func TestCausalScopes(t *testing.T) {
	s := netsim.NewScheduler(1)
	log := NewLog()
	rec := NewRecorder(log, "r1", s, nil)
	var in, out, nested, after IO
	s.At(0, func() {
		in = rec.Record(IO{Type: RecvAdvert, Prefix: pfx("10.0.0.0/8")})
		rec.WithCause([]uint64{in.ID}, func() {
			out = rec.Record(IO{Type: RIBInstall, Prefix: pfx("10.0.0.0/8")})
			rec.WithCause([]uint64{out.ID}, func() {
				nested = rec.Record(IO{Type: FIBInstall, Prefix: pfx("10.0.0.0/8")})
			})
		})
		after = rec.Record(IO{Type: SendAdvert, Prefix: pfx("10.0.0.0/8")})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(in.Causes) != 0 {
		t.Fatalf("input has causes: %v", in.Causes)
	}
	if len(out.Causes) != 1 || out.Causes[0] != in.ID {
		t.Fatalf("out causes = %v", out.Causes)
	}
	if len(nested.Causes) != 1 || nested.Causes[0] != out.ID {
		t.Fatalf("inner scope must replace outer: %v", nested.Causes)
	}
	if len(after.Causes) != 0 {
		t.Fatalf("scope leaked: %v", after.Causes)
	}
}

func TestExplicitCausesWinOverScope(t *testing.T) {
	s := netsim.NewScheduler(1)
	log := NewLog()
	rec := NewRecorder(log, "r1", s, nil)
	var io IO
	s.At(0, func() {
		rec.WithCause([]uint64{42}, func() {
			io = rec.Record(IO{Type: FIBInstall, Prefix: pfx("10.0.0.0/8"), Causes: []uint64{7}})
		})
	})
	_ = s.Run()
	if len(io.Causes) != 1 || io.Causes[0] != 7 {
		t.Fatalf("causes = %v", io.Causes)
	}
}

func TestPopCauseWithoutPushPanics(t *testing.T) {
	rec := NewRecorder(NewLog(), "r1", netsim.NewScheduler(1), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rec.PopCause()
}

func TestLogQueries(t *testing.T) {
	s := netsim.NewScheduler(1)
	log := NewLog()
	r1 := NewRecorder(log, "r1", s, nil)
	r2 := NewRecorder(log, "r2", s, nil)
	s.At(0, func() {
		r1.Record(IO{Type: RecvAdvert, Prefix: pfx("10.0.0.0/8")})
		r2.Record(IO{Type: RecvAdvert, Prefix: pfx("10.0.0.0/8")})
		r2.Record(IO{Type: RIBInstall, Prefix: pfx("20.0.0.0/8")})
	})
	_ = s.Run()
	if got := log.ForRouter("r2"); len(got) != 2 {
		t.Fatalf("ForRouter = %d", len(got))
	}
	if got := log.ForPrefix(pfx("10.0.0.0/8")); len(got) != 2 {
		t.Fatalf("ForPrefix = %d", len(got))
	}
	if io, ok := log.ByID(3); !ok || io.Prefix != pfx("20.0.0.0/8") {
		t.Fatalf("ByID = %+v %v", io, ok)
	}
	if _, ok := log.ByID(0); ok {
		t.Fatal("ID 0 resolved")
	}
	if _, ok := log.ByID(99); ok {
		t.Fatal("future ID resolved")
	}
}

func TestObservedOrderUsesSkewedClocks(t *testing.T) {
	s := netsim.NewScheduler(1)
	log := NewLog()
	// r1's clock runs 10s fast, so its earlier event sorts later.
	fast := NewRecorder(log, "r1", s, netsim.NewClockModel(10*time.Second, 0, 1))
	slow := NewRecorder(log, "r2", s, nil)
	s.At(0, func() { fast.Record(IO{Type: ConfigChange, Detail: "early but fast clock"}) })
	s.At(netsim.Duration(time.Second), func() { slow.Record(IO{Type: ConfigChange, Detail: "late"}) })
	_ = s.Run()
	obs := log.ObservedOrder()
	if obs[0].Router != "r2" || obs[1].Router != "r1" {
		t.Fatalf("observed order = %v,%v", obs[0].Router, obs[1].Router)
	}
	all := log.All()
	if all[0].Router != "r1" {
		t.Fatal("append order must stay true-time ordered")
	}
}

func TestSubscribe(t *testing.T) {
	s := netsim.NewScheduler(1)
	log := NewLog()
	var seen []uint64
	log.Subscribe(func(io IO) { seen = append(seen, io.ID) })
	rec := NewRecorder(log, "r1", s, nil)
	s.At(0, func() {
		rec.Record(IO{Type: ConfigChange})
		rec.Record(IO{Type: SoftReconfig})
	})
	_ = s.Run()
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("subscriber saw %v", seen)
	}
}

func TestStripOracle(t *testing.T) {
	ios := []IO{{ID: 1, Causes: []uint64{9}, TrueTime: 55, Time: 60}}
	out := StripOracle(ios)
	if out[0].Causes != nil || out[0].TrueTime != 0 || out[0].Time != 60 {
		t.Fatalf("strip = %+v", out[0])
	}
	if ios[0].Causes == nil {
		t.Fatal("original mutated")
	}
}

func TestHasPrefix(t *testing.T) {
	if (IO{Type: ConfigChange}).HasPrefix() {
		t.Fatal("config change has prefix")
	}
	if !(IO{Type: FIBInstall, Prefix: pfx("10.0.0.0/8")}).HasPrefix() {
		t.Fatal("fib install lacks prefix")
	}
}

func TestSnapshotSharedAndStable(t *testing.T) {
	log := NewLog()
	log.AppendBatch([]IO{{Type: ConfigChange}, {Type: SoftReconfig}})
	snap := log.Snapshot()
	if len(snap) != 2 || snap[0].ID != 1 || snap[1].ID != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The capped capacity must prevent later appends from aliasing into
	// an earlier snapshot.
	log.AppendBatch([]IO{{Type: LinkUp}})
	if len(snap) != 2 || cap(snap) != 2 {
		t.Fatalf("snapshot grew: len=%d cap=%d", len(snap), cap(snap))
	}
	if got := log.Snapshot(); len(got) != 3 || got[2].ID != 3 {
		t.Fatalf("second snapshot = %+v", got)
	}
}

func TestAppendBatch(t *testing.T) {
	log := NewLog()
	var seen []uint64
	log.Subscribe(func(io IO) { seen = append(seen, io.ID) })
	rec := NewRecorder(log, "r1", netsim.NewScheduler(1), nil)
	rec.Record(IO{Type: ConfigChange})
	stored := log.AppendBatch([]IO{
		{Router: "r2", Type: RecvAdvert, Prefix: pfx("10.0.0.0/8")},
		{Router: "r2", Type: RIBInstall, Prefix: pfx("10.0.0.0/8")},
	})
	if len(stored) != 2 || stored[0].ID != 2 || stored[1].ID != 3 {
		t.Fatalf("batch IDs = %+v", stored)
	}
	if log.Len() != 3 {
		t.Fatalf("Len = %d", log.Len())
	}
	if len(seen) != 3 || seen[1] != 2 || seen[2] != 3 {
		t.Fatalf("subscriber saw %v", seen)
	}
	if got := log.AppendBatch(nil); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
	if io, ok := log.ByID(3); !ok || io.Type != RIBInstall {
		t.Fatalf("ByID(3) = %+v %v", io, ok)
	}
}

func TestFilterRightSized(t *testing.T) {
	log := NewLog()
	var batch []IO
	for i := 0; i < 100; i++ {
		ty := RecvAdvert
		if i%10 == 0 {
			ty = ConfigChange
		}
		batch = append(batch, IO{Type: ty})
	}
	log.AppendBatch(batch)
	got := log.Filter(func(io IO) bool { return io.Type == ConfigChange })
	if len(got) != 10 || cap(got) != 10 {
		t.Fatalf("Filter len=%d cap=%d, want exactly 10", len(got), cap(got))
	}
	if none := log.Filter(func(IO) bool { return false }); none != nil {
		t.Fatalf("empty filter = %v", none)
	}
}

func TestObservedOrderCachedPerGeneration(t *testing.T) {
	log := NewLog()
	log.AppendBatch([]IO{{Type: ConfigChange, Time: 20}, {Type: LinkUp, Time: 10}})
	a := log.ObservedOrder()
	b := log.ObservedOrder()
	if &a[0] != &b[0] {
		t.Fatal("unchanged log must reuse the cached observed order")
	}
	if a[0].Time != 10 || a[1].Time != 20 {
		t.Fatalf("observed order = %+v", a)
	}
	log.AppendBatch([]IO{{Type: LinkDown, Time: 5}})
	c := log.ObservedOrder()
	if len(c) != 3 || c[0].Time != 5 {
		t.Fatalf("post-append observed order = %+v", c)
	}
	if len(a) != 2 {
		t.Fatal("old observed order mutated")
	}
}
