package capture

import (
	"sync"
	"testing"

	"hbverify/internal/netsim"
)

func appendN(l *Log, n int, at netsim.VirtualTime) {
	batch := make([]IO, n)
	for i := range batch {
		batch[i] = IO{Type: RecvAdvert, Time: at}
	}
	l.AppendBatch(batch)
}

func TestCompactBefore(t *testing.T) {
	l := NewLog()
	appendN(l, 10, 100)

	if got := l.CompactBefore(1); got != 0 {
		t.Fatalf("CompactBefore(1) evicted %d, want 0", got)
	}
	if got := l.CompactBefore(5); got != 4 {
		t.Fatalf("CompactBefore(5) evicted %d, want 4", got)
	}
	if l.Len() != 6 || l.FirstID() != 5 || l.TotalAppended() != 10 {
		t.Fatalf("after compaction: len=%d first=%d total=%d", l.Len(), l.FirstID(), l.TotalAppended())
	}
	if _, ok := l.ByID(4); ok {
		t.Fatal("ByID(4) found a compacted I/O")
	}
	if io, ok := l.ByID(5); !ok || io.ID != 5 {
		t.Fatalf("ByID(5) = %+v %v", io, ok)
	}
	if io, ok := l.ByID(10); !ok || io.ID != 10 {
		t.Fatalf("ByID(10) = %+v %v", io, ok)
	}
	if snap := l.Snapshot(); len(snap) != 6 || snap[0].ID != 5 {
		t.Fatalf("snapshot = len %d first %d", len(snap), snap[0].ID)
	}
	if obs := l.ObservedOrder(); len(obs) != 6 || obs[0].ID != 5 {
		t.Fatalf("observed = len %d first %d", len(obs), obs[0].ID)
	}
	// Re-compacting below the floor is a no-op.
	if got := l.CompactBefore(3); got != 0 {
		t.Fatalf("CompactBefore(3) evicted %d, want 0", got)
	}
}

func TestCompactToEmpty(t *testing.T) {
	l := NewLog()
	appendN(l, 4, 7)
	if got := l.CompactBefore(99); got != 4 {
		t.Fatalf("evicted %d, want 4", got)
	}
	if l.Len() != 0 || l.FirstID() != 5 || l.TotalAppended() != 4 {
		t.Fatalf("empty window: len=%d first=%d total=%d", l.Len(), l.FirstID(), l.TotalAppended())
	}
	if snap := l.Snapshot(); len(snap) != 0 {
		t.Fatalf("snapshot of empty window has %d entries", len(snap))
	}
	if got := l.CompactBefore(99); got != 0 {
		t.Fatal("compacting an empty window evicted something")
	}
	// Appends resume with dense IDs after total eviction.
	appendN(l, 2, 9)
	if io, ok := l.ByID(5); !ok || io.ID != 5 {
		t.Fatalf("post-eviction append: ByID(5) = %+v %v", io, ok)
	}
	if l.Len() != 2 || l.FirstID() != 5 {
		t.Fatalf("post-eviction window: len=%d first=%d", l.Len(), l.FirstID())
	}
}

func TestRestoreLog(t *testing.T) {
	l := NewLog()
	appendN(l, 6, 3)
	l.CompactBefore(3)
	window := l.All()

	r, err := RestoreLog(window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 || r.FirstID() != 3 || r.TotalAppended() != 6 {
		t.Fatalf("restored: len=%d first=%d total=%d", r.Len(), r.FirstID(), r.TotalAppended())
	}
	appendN(r, 1, 4)
	if io, ok := r.ByID(7); !ok || io.ID != 7 {
		t.Fatalf("restored log did not resume IDs: %+v %v", io, ok)
	}

	// A watermark past the retained tail would punch an ID hole: rejected.
	if _, err := RestoreLog(window, 11); err == nil {
		t.Fatal("gap-creating restore accepted")
	}

	// Empty window with a watermark restores a fully-compacted log.
	r3, err := RestoreLog(nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Len() != 0 || r3.FirstID() != 9 {
		t.Fatalf("empty restore: len=%d first=%d", r3.Len(), r3.FirstID())
	}

	// Non-dense windows are rejected.
	bad := []IO{{ID: 3}, {ID: 5}}
	if _, err := RestoreLog(bad, 0); err == nil {
		t.Fatal("non-dense restore window accepted")
	}
}

// TestSubscriberOrderUnderConcurrentAppend pins the ordered-dispatch fix:
// with appenders racing, subscribers must still observe every I/O in
// strictly increasing ID order. Pre-fix, delivery happened outside the
// mutex and two appenders could invert it.
func TestSubscriberOrderUnderConcurrentAppend(t *testing.T) {
	l := NewLog()
	var (
		seenMu sync.Mutex
		seen   []uint64
	)
	l.Subscribe(func(io IO) {
		seenMu.Lock()
		seen = append(seen, io.ID)
		seenMu.Unlock()
	})

	const writers, perW = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if w%2 == 0 {
					l.append(IO{Type: RecvAdvert})
				} else {
					l.AppendBatch([]IO{{Type: RecvAdvert}, {Type: RIBInstall}})
				}
			}
		}()
	}
	wg.Wait()

	want := writers / 2 * perW * 3
	if len(seen) != want {
		t.Fatalf("subscriber saw %d I/Os, want %d", len(seen), want)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("delivery out of ID order at %d: %d after %d", i, seen[i], seen[i-1])
		}
	}
}

// TestCompactionRacingIngestion drives appenders and a compactor
// concurrently; run under -race. Invariants: the window always spans
// [FirstID, TotalAppended], snapshots stay dense, and nothing panics.
func TestCompactionRacingIngestion(t *testing.T) {
	l := NewLog()
	const writers, perW = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				l.AppendBatch([]IO{{Type: RecvAdvert}, {Type: FIBInstall}})
			}
		}()
	}
	var cWg sync.WaitGroup
	cWg.Add(1)
	go func() {
		defer cWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			total := l.TotalAppended()
			if total > 50 {
				l.CompactBefore(total - 50)
			}
			snap := l.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].ID != snap[i-1].ID+1 {
					t.Errorf("snapshot not dense: %d after %d", snap[i].ID, snap[i-1].ID)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	cWg.Wait()

	if got := l.TotalAppended(); got != writers*perW*2 {
		t.Fatalf("total appended = %d, want %d", got, writers*perW*2)
	}
	l.CompactBefore(l.TotalAppended() + 1)
	if l.Len() != 0 {
		t.Fatalf("final compaction left %d entries", l.Len())
	}
}
