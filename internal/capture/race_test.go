package capture

import (
	"sync"
	"sync/atomic"
	"testing"

	"hbverify/internal/netsim"
)

// TestLogConcurrentRecordAndRead drives one shared log from several
// recorders while readers sweep it — the access pattern the parallel
// verifier and the distributed fleet create. Run under -race.
func TestLogConcurrentRecordAndRead(t *testing.T) {
	log := NewLog()
	sched := netsim.NewScheduler(1)

	var delivered atomic.Int64
	log.Subscribe(func(IO) { delivered.Add(1) })

	const (
		writers = 4
		readers = 3
		perW    = 500
	)
	var wWg, rWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wWg.Add(1)
		go func() {
			defer wWg.Done()
			rec := NewRecorder(log, "r"+string(rune('0'+w)), sched, nil)
			for i := 0; i < perW; i++ {
				rec.Record(IO{Type: RecvAdvert})
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		rWg.Add(1)
		go func() {
			defer rWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := log.Len()
				all := log.All()
				if len(all) < n {
					t.Errorf("All() returned %d < Len() %d", len(all), n)
					return
				}
				if snap := log.Snapshot(); len(snap) < n {
					t.Errorf("Snapshot() returned %d < Len() %d", len(snap), n)
					return
				}
				if obs := log.ObservedOrder(); len(obs) < n {
					t.Errorf("ObservedOrder() returned %d < Len() %d", len(obs), n)
					return
				}
				if n > 0 {
					if _, ok := log.ByID(uint64(n)); !ok {
						t.Errorf("ByID(%d) missing despite Len()=%d", n, n)
						return
					}
				}
			}
		}()
	}
	wWg.Wait()
	close(stop)
	rWg.Wait()

	if got := log.Len(); got != writers*perW {
		t.Fatalf("log.Len() = %d, want %d", got, writers*perW)
	}
	if got := delivered.Load(); got != int64(writers*perW) {
		t.Fatalf("subscriber saw %d I/Os, want %d", got, writers*perW)
	}
	// IDs are dense and append-ordered.
	for i, io := range log.All() {
		if io.ID != uint64(i+1) {
			t.Fatalf("I/O %d has ID %d, want %d", i, io.ID, i+1)
		}
	}
}

// TestLogConcurrentAppendBatch drives batch appends from several
// goroutines while readers take zero-copy snapshots. Run under -race.
func TestLogConcurrentAppendBatch(t *testing.T) {
	log := NewLog()
	var delivered atomic.Int64
	log.Subscribe(func(IO) { delivered.Add(1) })

	const (
		writers = 4
		batches = 50
		perB    = 20
	)
	var wWg, rWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wWg.Add(1)
		go func() {
			defer wWg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]IO, perB)
				for i := range batch {
					batch[i] = IO{Type: RecvAdvert}
				}
				stored := log.AppendBatch(batch)
				for i := 1; i < len(stored); i++ {
					if stored[i].ID != stored[i-1].ID+1 {
						t.Errorf("batch IDs not dense: %d after %d", stored[i].ID, stored[i-1].ID)
						return
					}
				}
			}
		}()
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		rWg.Add(1)
		go func() {
			defer rWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := log.Len()
				if snap := log.Snapshot(); len(snap) < n {
					t.Errorf("Snapshot() returned %d < Len() %d", len(snap), n)
					return
				}
			}
		}()
	}
	wWg.Wait()
	close(stop)
	rWg.Wait()

	want := int64(writers * batches * perB)
	if got := int64(log.Len()); got != want {
		t.Fatalf("log.Len() = %d, want %d", got, want)
	}
	if got := delivered.Load(); got != want {
		t.Fatalf("subscriber saw %d I/Os, want %d", got, want)
	}
}
