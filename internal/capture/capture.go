// Package capture records control-plane inputs and outputs (I/Os), the raw
// material of the paper's approach (§4). A router's control plane receives
// three input kinds — configuration changes, hardware status changes, and
// route advertisements/withdrawals — and produces three output kinds — RIB
// entries, FIB entries, and advertisements/withdrawals for other routers.
// Every protocol implementation in this repository reports each of these
// through a Recorder.
//
// Each I/O carries two timestamps: Time, the wall clock the router would
// stamp on a log line (virtual time distorted by that router's ClockModel),
// and TrueTime, the undistorted simulation time. Inference code (internal/
// hbr) may only use Time; TrueTime and the Causes field exist solely as the
// ground-truth oracle for the precision/recall experiments.
package capture

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"hbverify/internal/netsim"
	"hbverify/internal/route"
)

// Type classifies a control-plane I/O.
type Type uint8

// I/O types. Recv*/Config/Link* are inputs; Send*/RIB*/FIB* are outputs.
// SoftReconfig is an internal control-plane event that Cisco-style logs
// expose (Fig. 5) and that links a config change to the outputs it causes.
const (
	ConfigChange Type = iota
	LinkUp
	LinkDown
	RecvAdvert
	RecvWithdraw
	SendAdvert
	SendWithdraw
	RIBInstall
	RIBRemove
	FIBInstall
	FIBRemove
	SoftReconfig
)

var typeNames = [...]string{
	"config-change", "link-up", "link-down",
	"recv-advert", "recv-withdraw", "send-advert", "send-withdraw",
	"rib-install", "rib-remove", "fib-install", "fib-remove",
	"soft-reconfig",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("io(%d)", uint8(t))
}

// ParseType is the inverse of Type.String. The boolean reports success.
func ParseType(s string) (Type, bool) {
	for i, n := range typeNames {
		if s == n {
			return Type(i), true
		}
	}
	return 0, false
}

// IsInput reports whether t is an input to the control plane (§4.1).
func (t Type) IsInput() bool {
	switch t {
	case ConfigChange, LinkUp, LinkDown, RecvAdvert, RecvWithdraw:
		return true
	}
	return false
}

// IsOutput reports whether t is an output of the control plane.
func (t Type) IsOutput() bool {
	switch t {
	case SendAdvert, SendWithdraw, RIBInstall, RIBRemove, FIBInstall, FIBRemove:
		return true
	}
	return false
}

// IO is one captured control-plane input or output.
type IO struct {
	ID     uint64
	Router string
	Type   Type
	Proto  route.Protocol
	// Prefix is set for all route-carrying I/Os; the zero Prefix marks
	// prefix-less events (config changes, link events).
	Prefix  netip.Prefix
	NextHop netip.Addr
	// Peer names the remote router for send/recv I/Os; PeerAddr is the
	// session address. For link events Peer names the other end.
	Peer     string
	PeerAddr netip.Addr
	Attrs    route.BGPAttrs
	// Detail carries human-readable context: config summaries, link names.
	Detail string
	// Time is the router-observed (skewed) timestamp used by inference.
	Time netsim.VirtualTime
	// TrueTime is the undistorted virtual time (oracle only).
	TrueTime netsim.VirtualTime
	// Causes lists ground-truth causal parents (oracle only).
	Causes []uint64
}

// HasPrefix reports whether the I/O carries a route prefix.
func (io IO) HasPrefix() bool { return io.Prefix.IsValid() }

// String renders the I/O in the paper's "[router action prefix]" style.
func (io IO) String() string {
	switch io.Type {
	case ConfigChange:
		return fmt.Sprintf("[%s config change: %s]", io.Router, io.Detail)
	case LinkUp, LinkDown:
		return fmt.Sprintf("[%s %s %s]", io.Router, io.Type, io.Detail)
	case SoftReconfig:
		return fmt.Sprintf("[%s soft reconfiguration]", io.Router)
	case RecvAdvert, RecvWithdraw:
		return fmt.Sprintf("[%s %s %s %s from %s]", io.Router, io.Type, io.Proto, io.Prefix, io.Peer)
	case SendAdvert, SendWithdraw:
		return fmt.Sprintf("[%s %s %s %s to %s]", io.Router, io.Type, io.Proto, io.Prefix, io.Peer)
	case RIBInstall, RIBRemove:
		return fmt.Sprintf("[%s %s %s %s via %s]", io.Router, io.Type, io.Proto, io.Prefix, nhString(io.NextHop))
	case FIBInstall, FIBRemove:
		return fmt.Sprintf("[%s %s %s via %s]", io.Router, io.Type, io.Prefix, nhString(io.NextHop))
	default:
		return fmt.Sprintf("[%s %s]", io.Router, io.Type)
	}
}

func nhString(a netip.Addr) string {
	if !a.IsValid() {
		return "direct"
	}
	return a.String()
}

// Log is the network-wide capture log shared by all recorders. It is safe
// for concurrent use (the distributed verifier reads it from goroutines).
type Log struct {
	mu     sync.Mutex
	nextID uint64
	ios    []IO
	subs   []func(IO)
	// obs caches the ObservedOrder result for one log generation (keyed
	// by nextID), so repeated inference ticks over an unchanged log do
	// not re-sort the world.
	obs    []IO
	obsGen uint64
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{nextID: 1} }

// Subscribe registers fn to be called synchronously for every appended I/O.
// Subscribers must not append to the log.
func (l *Log) Subscribe(fn func(IO)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs = append(l.subs, fn)
}

func (l *Log) append(io IO) IO {
	l.mu.Lock()
	io.ID = l.nextID
	l.nextID++
	l.ios = append(l.ios, io)
	subs := l.subs
	l.mu.Unlock()
	for _, fn := range subs {
		fn(io)
	}
	return io
}

// Len reports the number of captured I/Os.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ios)
}

// All returns a copy of every captured I/O in append order (which equals
// TrueTime order because the simulator is single-threaded).
func (l *Log) All() []IO {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]IO(nil), l.ios...)
}

// Snapshot returns the captured I/Os in append order as a shared,
// capacity-capped slice — zero copies. Entries are never mutated after
// append and the cap prevents aliasing future appends, so the result is
// immutable; callers must treat it as read-only (use All for a private
// copy).
func (l *Log) Snapshot() []IO {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ios[:len(l.ios):len(l.ios)]
}

// AppendBatch appends a batch of I/Os in one critical section, assigning
// dense IDs, and returns the stored entries as a shared read-only slice.
// Replayed or parsed logs land in one mutex acquisition instead of one
// per line; subscribers still observe every I/O individually, in order.
func (l *Log) AppendBatch(ios []IO) []IO {
	if len(ios) == 0 {
		return nil
	}
	l.mu.Lock()
	start := len(l.ios)
	l.ios = append(l.ios, ios...)
	for i := start; i < len(l.ios); i++ {
		l.ios[i].ID = l.nextID
		l.nextID++
	}
	stored := l.ios[start:len(l.ios):len(l.ios)]
	subs := l.subs
	l.mu.Unlock()
	for i := range stored {
		for _, fn := range subs {
			fn(stored[i])
		}
	}
	return stored
}

// ByID returns the I/O with the given ID.
func (l *Log) ByID(id uint64) (IO, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id == 0 || id >= l.nextID {
		return IO{}, false
	}
	// IDs are dense and append-ordered.
	return l.ios[id-1], true
}

// Filter returns the I/Os for which keep returns true, in append order.
// It filters under the lock into a right-sized slice instead of copying
// the whole log first.
func (l *Log) Filter(keep func(IO) bool) []IO {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.ios {
		if keep(l.ios[i]) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]IO, 0, n)
	for i := range l.ios {
		if keep(l.ios[i]) {
			out = append(out, l.ios[i])
		}
	}
	return out
}

// ForRouter returns the I/Os captured at one router.
func (l *Log) ForRouter(name string) []IO {
	return l.Filter(func(io IO) bool { return io.Router == name })
}

// ForPrefix returns the I/Os carrying the exact prefix p.
func (l *Log) ForPrefix(p netip.Prefix) []IO {
	p = p.Masked()
	return l.Filter(func(io IO) bool { return io.Prefix == p })
}

// ObservedOrder returns all I/Os sorted by router-observed time, breaking
// ties by ID. This is the view an inference engine working from collected
// router logs would have. The result is cached per log generation and
// shared between calls; callers must treat it as read-only.
func (l *Log) ObservedOrder() []IO {
	l.mu.Lock()
	if l.obs != nil && l.obsGen == l.nextID {
		out := l.obs
		l.mu.Unlock()
		return out
	}
	gen := l.nextID
	out := append([]IO(nil), l.ios...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].ID < out[j].ID
	})
	l.mu.Lock()
	if gen >= l.obsGen {
		l.obs, l.obsGen = out, gen
	}
	l.mu.Unlock()
	return out
}

// StripOracle returns a copy of the I/Os with ground-truth fields cleared,
// for handing to inference code in experiments that must not cheat.
func StripOracle(ios []IO) []IO {
	out := append([]IO(nil), ios...)
	for i := range out {
		out[i].Causes = nil
		out[i].TrueTime = 0
	}
	return out
}

// Recorder captures I/Os on behalf of one router, stamping them with the
// router's (possibly skewed) clock and the current causal scope.
type Recorder struct {
	log    *Log
	router string
	sched  *netsim.Scheduler
	clock  *netsim.ClockModel
	scope  [][]uint64
}

// NewRecorder builds a recorder for a router. clock may be nil for a
// perfectly synchronized router.
func NewRecorder(log *Log, router string, sched *netsim.Scheduler, clock *netsim.ClockModel) *Recorder {
	return &Recorder{log: log, router: router, sched: sched, clock: clock}
}

// Router returns the owning router's name.
func (r *Recorder) Router() string { return r.router }

// PushCause enters a causal scope: every I/O recorded until the matching
// PopCause lists ids as ground-truth parents. Scopes nest; inner scopes
// replace (not extend) outer ones, because a protocol handler processing
// input X knows exactly which inputs its outputs depend on.
func (r *Recorder) PushCause(ids ...uint64) {
	r.scope = append(r.scope, append([]uint64(nil), ids...))
}

// PopCause leaves the innermost causal scope.
func (r *Recorder) PopCause() {
	if len(r.scope) == 0 {
		panic("capture: PopCause without PushCause")
	}
	r.scope = r.scope[:len(r.scope)-1]
}

// WithCause runs fn inside a causal scope.
func (r *Recorder) WithCause(ids []uint64, fn func()) {
	r.PushCause(ids...)
	defer r.PopCause()
	fn()
}

// Record appends io to the network log, filling router, timestamps, and the
// causal scope. It returns the stored I/O (with its assigned ID) so callers
// can chain causality.
func (r *Recorder) Record(io IO) IO {
	io.Router = r.router
	now := r.sched.Now()
	io.TrueTime = now
	io.Time = r.clock.Read(now)
	if len(io.Causes) == 0 && len(r.scope) > 0 {
		io.Causes = append([]uint64(nil), r.scope[len(r.scope)-1]...)
	}
	return r.log.append(io)
}
