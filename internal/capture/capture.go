// Package capture records control-plane inputs and outputs (I/Os), the raw
// material of the paper's approach (§4). A router's control plane receives
// three input kinds — configuration changes, hardware status changes, and
// route advertisements/withdrawals — and produces three output kinds — RIB
// entries, FIB entries, and advertisements/withdrawals for other routers.
// Every protocol implementation in this repository reports each of these
// through a Recorder.
//
// Each I/O carries two timestamps: Time, the wall clock the router would
// stamp on a log line (virtual time distorted by that router's ClockModel),
// and TrueTime, the undistorted simulation time. Inference code (internal/
// hbr) may only use Time; TrueTime and the Causes field exist solely as the
// ground-truth oracle for the precision/recall experiments.
package capture

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"hbverify/internal/netsim"
	"hbverify/internal/route"
)

// Type classifies a control-plane I/O.
type Type uint8

// I/O types. Recv*/Config/Link* are inputs; Send*/RIB*/FIB* are outputs.
// SoftReconfig is an internal control-plane event that Cisco-style logs
// expose (Fig. 5) and that links a config change to the outputs it causes.
const (
	ConfigChange Type = iota
	LinkUp
	LinkDown
	RecvAdvert
	RecvWithdraw
	SendAdvert
	SendWithdraw
	RIBInstall
	RIBRemove
	FIBInstall
	FIBRemove
	SoftReconfig
)

var typeNames = [...]string{
	"config-change", "link-up", "link-down",
	"recv-advert", "recv-withdraw", "send-advert", "send-withdraw",
	"rib-install", "rib-remove", "fib-install", "fib-remove",
	"soft-reconfig",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("io(%d)", uint8(t))
}

// ParseType is the inverse of Type.String. The boolean reports success.
func ParseType(s string) (Type, bool) {
	for i, n := range typeNames {
		if s == n {
			return Type(i), true
		}
	}
	return 0, false
}

// IsInput reports whether t is an input to the control plane (§4.1).
func (t Type) IsInput() bool {
	switch t {
	case ConfigChange, LinkUp, LinkDown, RecvAdvert, RecvWithdraw:
		return true
	}
	return false
}

// IsOutput reports whether t is an output of the control plane.
func (t Type) IsOutput() bool {
	switch t {
	case SendAdvert, SendWithdraw, RIBInstall, RIBRemove, FIBInstall, FIBRemove:
		return true
	}
	return false
}

// IO is one captured control-plane input or output.
type IO struct {
	ID     uint64
	Router string
	Type   Type
	Proto  route.Protocol
	// Prefix is set for all route-carrying I/Os; the zero Prefix marks
	// prefix-less events (config changes, link events).
	Prefix  netip.Prefix
	NextHop netip.Addr
	// NextHops carries the full ECMP next-hop set for multipath FIB I/Os
	// (sorted, NextHops[0] == NextHop); nil for single-path I/Os.
	NextHops []netip.Addr
	// Peer names the remote router for send/recv I/Os; PeerAddr is the
	// session address. For link events Peer names the other end.
	Peer     string
	PeerAddr netip.Addr
	Attrs    route.BGPAttrs
	// Detail carries human-readable context: config summaries, link names.
	Detail string
	// Time is the router-observed (skewed) timestamp used by inference.
	Time netsim.VirtualTime
	// TrueTime is the undistorted virtual time (oracle only).
	TrueTime netsim.VirtualTime
	// Causes lists ground-truth causal parents (oracle only).
	Causes []uint64
}

// HasPrefix reports whether the I/O carries a route prefix.
func (io IO) HasPrefix() bool { return io.Prefix.IsValid() }

// String renders the I/O in the paper's "[router action prefix]" style.
func (io IO) String() string {
	switch io.Type {
	case ConfigChange:
		return fmt.Sprintf("[%s config change: %s]", io.Router, io.Detail)
	case LinkUp, LinkDown:
		return fmt.Sprintf("[%s %s %s]", io.Router, io.Type, io.Detail)
	case SoftReconfig:
		return fmt.Sprintf("[%s soft reconfiguration]", io.Router)
	case RecvAdvert, RecvWithdraw:
		return fmt.Sprintf("[%s %s %s %s from %s]", io.Router, io.Type, io.Proto, io.Prefix, io.Peer)
	case SendAdvert, SendWithdraw:
		return fmt.Sprintf("[%s %s %s %s to %s]", io.Router, io.Type, io.Proto, io.Prefix, io.Peer)
	case RIBInstall, RIBRemove:
		return fmt.Sprintf("[%s %s %s %s via %s]", io.Router, io.Type, io.Proto, io.Prefix, nhString(io.NextHop))
	case FIBInstall, FIBRemove:
		return fmt.Sprintf("[%s %s %s via %s]", io.Router, io.Type, io.Prefix, nhString(io.NextHop))
	default:
		return fmt.Sprintf("[%s %s]", io.Router, io.Type)
	}
}

func nhString(a netip.Addr) string {
	if !a.IsValid() {
		return "direct"
	}
	return a.String()
}

// Log is the network-wide capture log shared by all recorders. It is safe
// for concurrent use (the distributed verifier reads it from goroutines).
//
// The log is a *window* over an append-only history: every I/O ever
// appended gets a dense, monotonically increasing ID, and CompactBefore
// evicts a prefix of the retained window once its inferred happens-before
// edges have been folded into a checkpoint (see internal/stream). All
// accessors operate on the retained window; TotalAppended and FirstID
// expose the window's position in the full history.
type Log struct {
	mu      sync.Mutex
	nextID  uint64
	firstID uint64 // ID of ios[0]; nextID when the window is empty
	ios     []IO
	subs    []func(IO)
	// gen counts mutations (appends and compactions); obs caches the
	// ObservedOrder result for one generation, so repeated inference ticks
	// over an unchanged log do not re-sort the world.
	gen    uint64
	obs    []IO
	obsGen uint64
	// pending holds appended I/Os awaiting subscriber delivery, in ID
	// order; dispatchMu serializes delivery so concurrent appenders can
	// never deliver out of ID order (the documented subscriber guarantee).
	pending    []IO
	dispatchMu sync.Mutex
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{nextID: 1, firstID: 1} }

// RestoreLog rebuilds a log from a recovered checkpoint window: ios must
// carry dense ascending IDs (as Snapshot returns them) and become the
// retained window verbatim; ID assignment resumes after the last entry.
// An empty ios with nextID n restores a fully-compacted log whose next
// append gets ID n (pass 0 for a fresh log). A non-empty window rejects a
// nextID past its tail: that would punch a hole in the dense ID space.
func RestoreLog(ios []IO, nextID uint64) (*Log, error) {
	l := &Log{nextID: 1, firstID: 1}
	if len(ios) > 0 {
		for i := 1; i < len(ios); i++ {
			if ios[i].ID != ios[i-1].ID+1 {
				return nil, fmt.Errorf("capture: restore window not dense at index %d (ID %d after %d)",
					i, ios[i].ID, ios[i-1].ID)
			}
		}
		if ios[0].ID == 0 {
			return nil, fmt.Errorf("capture: restore window starts at ID 0")
		}
		if nextID > ios[len(ios)-1].ID+1 {
			return nil, fmt.Errorf("capture: restore nextID %d leaves a gap after retained tail %d",
				nextID, ios[len(ios)-1].ID)
		}
		l.ios = append([]IO(nil), ios...)
		l.firstID = ios[0].ID
		l.nextID = ios[len(ios)-1].ID + 1
	} else if nextID > 1 {
		l.nextID, l.firstID = nextID, nextID
	}
	return l, nil
}

// Subscribe registers fn to be called for every appended I/O, in ID order.
// Delivery happens outside the log's internal lock but inside a dedicated
// dispatch lock, so with concurrent appenders an I/O may be delivered by a
// sibling appender's call rather than its own; the order guarantee holds
// regardless. Subscribers must not append to the log.
func (l *Log) Subscribe(fn func(IO)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subs = append(l.subs, fn)
}

// Append records one externally-sourced I/O (e.g. a parsed log line),
// assigning the next dense ID. Recorder-driven capture goes through the
// typed helpers below; Append is the ingestion entry point for events that
// arrive already formed.
func (l *Log) Append(io IO) IO { return l.append(io) }

func (l *Log) append(io IO) IO {
	l.mu.Lock()
	io.ID = l.nextID
	l.nextID++
	l.gen++
	l.ios = append(l.ios, io)
	deliver := len(l.subs) > 0
	if deliver {
		l.pending = append(l.pending, io)
	}
	l.mu.Unlock()
	if deliver {
		l.dispatch()
	}
	return io
}

// dispatch drains pending I/Os to subscribers in ID order. The dispatch
// lock makes delivery a critical section of its own: whichever appender
// wins it delivers everything queued so far, so no interleaving of
// concurrent appenders can reorder what subscribers observe.
func (l *Log) dispatch() {
	l.dispatchMu.Lock()
	defer l.dispatchMu.Unlock()
	for {
		l.mu.Lock()
		batch := l.pending
		l.pending = nil
		subs := l.subs
		l.mu.Unlock()
		if len(batch) == 0 {
			return
		}
		for i := range batch {
			for _, fn := range subs {
				fn(batch[i])
			}
		}
	}
}

// Len reports the number of retained I/Os (the current window size).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ios)
}

// TotalAppended reports how many I/Os have ever been appended, including
// compacted-away ones.
func (l *Log) TotalAppended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID - 1
}

// FirstID returns the ID of the oldest retained I/O, or the next ID to be
// assigned when the window is empty. IDs below FirstID have been
// compacted away.
func (l *Log) FirstID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ios) == 0 {
		return l.nextID
	}
	return l.firstID
}

// CompactBefore evicts every retained I/O with ID < id, releasing its
// memory, and returns the number evicted. Callers must first fold the
// evicted events' inferred edges into a checkpoint (hbg.Checkpoint /
// hbr.Incremental.CompactBaseline) or they are lost to inference. IDs at
// or above the append frontier evict the whole window.
func (l *Log) CompactBefore(id uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id > l.nextID {
		id = l.nextID
	}
	if len(l.ios) == 0 || id <= l.firstID {
		return 0
	}
	drop := int(id - l.firstID)
	if drop > len(l.ios) {
		drop = len(l.ios)
	}
	// Copy into a right-sized slice so the evicted prefix's backing array
	// is actually released rather than pinned by the retained tail.
	kept := make([]IO, len(l.ios)-drop)
	copy(kept, l.ios[drop:])
	l.ios = kept
	l.firstID += uint64(drop)
	l.gen++
	l.obs = nil // drop the stale observed-order cache's memory too
	return drop
}

// All returns a copy of every retained I/O in append order (which equals
// TrueTime order because the simulator is single-threaded).
func (l *Log) All() []IO {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]IO(nil), l.ios...)
}

// Snapshot returns the retained I/Os in append order as a shared,
// capacity-capped slice — zero copies. Entries are never mutated after
// append and the cap prevents aliasing future appends, so the result is
// immutable; callers must treat it as read-only (use All for a private
// copy).
func (l *Log) Snapshot() []IO {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ios[:len(l.ios):len(l.ios)]
}

// AppendBatch appends a batch of I/Os in one critical section, assigning
// dense IDs, and returns the stored entries as a shared read-only slice.
// Replayed or parsed logs land in one mutex acquisition instead of one
// per line; subscribers still observe every I/O individually, in order.
func (l *Log) AppendBatch(ios []IO) []IO {
	if len(ios) == 0 {
		return nil
	}
	l.mu.Lock()
	start := len(l.ios)
	l.ios = append(l.ios, ios...)
	for i := start; i < len(l.ios); i++ {
		l.ios[i].ID = l.nextID
		l.nextID++
	}
	l.gen++
	stored := l.ios[start:len(l.ios):len(l.ios)]
	deliver := len(l.subs) > 0
	if deliver {
		l.pending = append(l.pending, stored...)
	}
	l.mu.Unlock()
	if deliver {
		l.dispatch()
	}
	return stored
}

// ByID returns the I/O with the given ID. Compacted-away IDs report false.
func (l *Log) ByID(id uint64) (IO, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id < l.firstID || id >= l.nextID {
		return IO{}, false
	}
	// IDs are dense and append-ordered within the retained window.
	return l.ios[id-l.firstID], true
}

// Filter returns the I/Os for which keep returns true, in append order.
// It filters under the lock into a right-sized slice instead of copying
// the whole log first.
func (l *Log) Filter(keep func(IO) bool) []IO {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := range l.ios {
		if keep(l.ios[i]) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]IO, 0, n)
	for i := range l.ios {
		if keep(l.ios[i]) {
			out = append(out, l.ios[i])
		}
	}
	return out
}

// ForRouter returns the I/Os captured at one router.
func (l *Log) ForRouter(name string) []IO {
	return l.Filter(func(io IO) bool { return io.Router == name })
}

// ForPrefix returns the I/Os carrying the exact prefix p.
func (l *Log) ForPrefix(p netip.Prefix) []IO {
	p = p.Masked()
	return l.Filter(func(io IO) bool { return io.Prefix == p })
}

// ObservedOrder returns the retained I/Os sorted by router-observed time,
// breaking ties by ID. This is the view an inference engine working from
// collected router logs would have. The result is cached per log
// generation and shared between calls; callers must treat it as read-only.
func (l *Log) ObservedOrder() []IO {
	l.mu.Lock()
	if l.obs != nil && l.obsGen == l.gen {
		out := l.obs
		l.mu.Unlock()
		return out
	}
	gen := l.gen
	out := append([]IO(nil), l.ios...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].ID < out[j].ID
	})
	l.mu.Lock()
	if gen >= l.obsGen {
		l.obs, l.obsGen = out, gen
	}
	l.mu.Unlock()
	return out
}

// StripOracle returns a copy of the I/Os with ground-truth fields cleared,
// for handing to inference code in experiments that must not cheat.
func StripOracle(ios []IO) []IO {
	out := append([]IO(nil), ios...)
	for i := range out {
		out[i].Causes = nil
		out[i].TrueTime = 0
	}
	return out
}

// Recorder captures I/Os on behalf of one router, stamping them with the
// router's (possibly skewed) clock and the current causal scope.
type Recorder struct {
	log    *Log
	router string
	sched  *netsim.Scheduler
	clock  *netsim.ClockModel
	scope  [][]uint64
}

// NewRecorder builds a recorder for a router. clock may be nil for a
// perfectly synchronized router.
func NewRecorder(log *Log, router string, sched *netsim.Scheduler, clock *netsim.ClockModel) *Recorder {
	return &Recorder{log: log, router: router, sched: sched, clock: clock}
}

// Router returns the owning router's name.
func (r *Recorder) Router() string { return r.router }

// PushCause enters a causal scope: every I/O recorded until the matching
// PopCause lists ids as ground-truth parents. Scopes nest; inner scopes
// replace (not extend) outer ones, because a protocol handler processing
// input X knows exactly which inputs its outputs depend on.
func (r *Recorder) PushCause(ids ...uint64) {
	r.scope = append(r.scope, append([]uint64(nil), ids...))
}

// PopCause leaves the innermost causal scope.
func (r *Recorder) PopCause() {
	if len(r.scope) == 0 {
		panic("capture: PopCause without PushCause")
	}
	r.scope = r.scope[:len(r.scope)-1]
}

// WithCause runs fn inside a causal scope.
func (r *Recorder) WithCause(ids []uint64, fn func()) {
	r.PushCause(ids...)
	defer r.PopCause()
	fn()
}

// Record appends io to the network log, filling router, timestamps, and the
// causal scope. It returns the stored I/O (with its assigned ID) so callers
// can chain causality.
func (r *Recorder) Record(io IO) IO {
	io.Router = r.router
	now := r.sched.Now()
	io.TrueTime = now
	io.Time = r.clock.Read(now)
	if len(io.Causes) == 0 && len(r.scope) > 0 {
		io.Causes = append([]uint64(nil), r.scope[len(r.scope)-1]...)
	}
	return r.log.append(io)
}
