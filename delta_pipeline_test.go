package hbverify

import (
	"reflect"
	"strings"
	"testing"

	"hbverify/internal/config"
	"hbverify/internal/eqclass"
	"hbverify/internal/verify"
)

// TestPipelineVerifyUsesWalkCache proves repeat Verify calls on a quiet
// network come entirely from the walk cache, and that a control-plane
// change re-executes walks and changes the verdict correctly.
func TestPipelineVerifyUsesWalkCache(t *testing.T) {
	pn, p := startPaper(t)
	policies := []verify.Policy{
		{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"},
		{Kind: verify.NoLoop, Prefix: pn.P},
	}
	first := p.Verify(policies)
	if !first.OK() || first.Walks == 0 || first.Cached != 0 {
		t.Fatalf("cold verify: %+v", first)
	}
	second := p.Verify(policies)
	if second.Walks != 0 || second.Cached != first.Walks {
		t.Fatalf("warm verify executed %d walks, cached %d; want 0/%d",
			second.Walks, second.Cached, first.Walks)
	}
	if !reflect.DeepEqual(first.Violations, second.Violations) {
		t.Fatal("cached verify changed verdicts")
	}

	// Fig. 2 misconfiguration: the cache must notice via FIB deltas alone.
	if _, err := pn.UpdateConfig("r2", "lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	third := p.Verify(policies)
	if third.OK() {
		t.Fatal("cached verify missed the misconfiguration")
	}
	if third.Walks == 0 {
		t.Fatal("no walks re-executed after FIB changes")
	}
}

// TestPipelineClassesMatchCompute checks the pipeline's incremental
// classifier against a from-scratch Compute, before and after churn.
func TestPipelineClassesMatchCompute(t *testing.T) {
	pn, p := startPaper(t)
	want := eqclass.Compute(pn.FIBSnapshot(), nil)
	if got := p.Classes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("classes = %v, want %v", got, want)
	}

	if _, err := pn.SetLinkUp("r2", "e2", false); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	want = eqclass.Compute(pn.FIBSnapshot(), nil)
	if got := p.Classes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("classes after link-down = %v, want %v", got, want)
	}
}

// TestPipelineRepairFlushesDeltaState runs the end-to-end repair flow and
// requires the delta path to stay equivalent to from-scratch computation
// across the rollback (whose Invalidate hook flushes both caches).
func TestPipelineRepairFlushesDeltaState(t *testing.T) {
	pn, p := startPaper(t)
	policies := []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
	p.Verify(policies) // populate the walk cache

	if _, err := pn.UpdateConfig("r2", "lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	d, err := p.DetectAndRepair(policies)
	if err != nil || !d.RolledBack {
		t.Fatalf("repair: %v / %v", err, d)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}

	if rep := p.Verify(policies); !rep.OK() {
		t.Fatalf("cached verify stale after rollback: %v", rep.Violations)
	}
	want := eqclass.Compute(pn.FIBSnapshot(), nil)
	if got := p.Classes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("classes stale after rollback: %v, want %v", got, want)
	}
}

// TestPipelineSummaryExposesDeltaMetrics checks the new counters surface
// through Pipeline.Summary after the delta path has done work.
func TestPipelineSummaryExposesDeltaMetrics(t *testing.T) {
	pn, p := startPaper(t)
	pols := []verify.Policy{{Kind: verify.NoLoop, Prefix: pn.P}}
	p.Verify(pols)
	p.Verify(pols)
	p.Classes()
	s := p.Summary()
	for _, counter := range []string{"verify.walks.cached", "eqclass.resigned"} {
		if !strings.Contains(s, counter) {
			t.Fatalf("summary missing %s:\n%s", counter, s)
		}
	}
}
