package hbverify

import (
	"testing"

	"hbverify/internal/config"
	"hbverify/internal/verify"
)

// TestPipelineVerifyLocalChecks drives the hybrid local-check loop
// end-to-end: the first round walks everything and derives labels, a
// quiet second round certifies every pair locally without touching the
// wire, and a control-plane change trips a local invariant on the dirty
// router, escalating exactly the affected class to targeted walks.
func TestPipelineVerifyLocalChecks(t *testing.T) {
	pn, p := startPaper(t)
	defer p.Close()
	policies := []verify.Policy{
		{Kind: verify.Reachable, Prefix: pn.P},
		{Kind: verify.NoLoop, Prefix: pn.P},
		{Kind: verify.NoBlackhole, Prefix: pn.P},
	}

	first, err := p.VerifyLocalChecks(policies)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Relabeled || !first.Report.OK() || first.Frames == 0 {
		t.Fatalf("cold local-check round: %+v", first)
	}

	second, err := p.VerifyLocalChecks(policies)
	if err != nil {
		t.Fatal(err)
	}
	if second.Relabeled || second.Frames != 0 || second.Bytes != 0 {
		t.Fatalf("quiet round touched the wire: %+v", second)
	}
	if second.LocalCertified != second.Walks || second.Escalated != 0 {
		t.Fatalf("quiet round not fully certified: %+v", second)
	}
	if !second.Report.OK() || second.Report.Checked != first.Report.Checked {
		t.Fatalf("quiet round verdict drifted: %+v", second.Report)
	}

	// Fig. 2 misconfiguration: r2's egress for P moves from e2 toward r1.
	// Under the pre-change labels r1 sits farther from the egress than r2,
	// so r2's local monotonicity check must flag the install and the round
	// escalates the whole class to real walks — which still certify
	// reachability, matching the central verdict.
	if _, err := pn.UpdateConfig("r2", "lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	third, err := p.VerifyLocalChecks(policies)
	if err != nil {
		t.Fatal(err)
	}
	if third.Relabeled {
		t.Fatalf("churn round relabeled early: %+v", third)
	}
	if third.LocalViolations == 0 || third.Escalated == 0 {
		t.Fatalf("change did not escalate: %+v", third)
	}
	if third.Frames == 0 {
		t.Fatal("escalated round shipped no frames")
	}
	central := p.checker(p.Walker()).Check(policies)
	if central.OK() != third.Report.OK() || len(central.Violations) != len(third.Report.Violations) {
		t.Fatalf("local-check verdict diverged: central=%+v local=%+v", central, third.Report)
	}
}

// TestPipelineLocalChecksMatchCentral asserts the hybrid loop and the
// central checker agree policy-for-policy across healthy and broken
// stages, whether a round certifies locally or escalates.
func TestPipelineLocalChecksMatchCentral(t *testing.T) {
	pn, p := startPaper(t)
	defer p.Close()
	policies := []verify.Policy{
		{Kind: verify.Reachable, Prefix: pn.P},
		{Kind: verify.NoBlackhole, Prefix: pn.P},
	}
	check := func(stage string) {
		t.Helper()
		central := p.checker(p.Walker()).Check(policies)
		stats, err := p.VerifyLocalChecks(policies)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if central.OK() != stats.Report.OK() {
			t.Fatalf("%s: central OK=%v, local-check OK=%v", stage, central.OK(), stats.Report.OK())
		}
		if len(central.Violations) != len(stats.Report.Violations) {
			t.Fatalf("%s: central %d violations, local-check %d",
				stage, len(central.Violations), len(stats.Report.Violations))
		}
	}
	check("healthy")
	check("healthy-quiet")
	if _, err := pn.SetLinkUp("r2", "e2", false); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	check("link-down")
	if _, err := pn.SetLinkUp("r2", "e2", true); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	check("link-restored")
}
