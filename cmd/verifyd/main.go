// Command verifyd demonstrates §5's distributed verification: it converges
// a scenario, starts one TCP verification node per router plus a
// coordinator, runs the policy suite through the fleet, and reports the
// message/byte overhead against the centralized alternative.
//
// Usage:
//
//	verifyd                   # paper network, healthy
//	verifyd -violate          # paper network with the Fig. 2 misconfig
//	verifyd -grid 4           # 4x4 OSPF grid reachability sweep
//	verifyd -serve            # always-on mode: stream ingestion with
//	                          # windowed compaction and checkpointing
//	verifyd -queries 1000     # fire concurrent point queries through the
//	                          # verification query engine and report QPS,
//	                          # tail latency, and plan-cache hit ratio
//	verifyd -query-addr :8080 # expose the query engine over HTTP
//	                          # (GET /query, GET /stats) and block
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hbverify"
	"hbverify/internal/config"
	"hbverify/internal/dataplane"
	"hbverify/internal/dist"
	"hbverify/internal/fib"
	"hbverify/internal/hbr"
	"hbverify/internal/metrics"
	"hbverify/internal/network"
	"hbverify/internal/route"
	"hbverify/internal/serve"
	"hbverify/internal/stream"
	"hbverify/internal/verify"
)

func main() {
	var (
		violate = flag.Bool("violate", false, "inject the Fig. 2 misconfiguration first")
		grid    = flag.Int("grid", 0, "use an NxN OSPF grid instead of the paper network")
		seed    = flag.Int64("seed", 1, "simulation seed")
		workers = flag.Int("workers", 0, "local verification walk pool size (0 = GOMAXPROCS)")

		localChecks = flag.Bool("local-checks", false, "run the hybrid local-check loop: per-node invariant checks certify quiet updates, violations escalate to targeted walks")

		queries   = flag.Int("queries", 0, "fire this many concurrent queries through the query engine and report service stats")
		queryAddr = flag.String("query-addr", "", "serve the query engine over HTTP on this address (GET /query, GET /stats)")

		serve        = flag.Bool("serve", false, "always-on mode: ingest simulated router log streams")
		routers      = flag.Int("routers", 4, "serve: simulated router count")
		waves        = flag.Int("waves", 2000, "serve: advert waves to stream")
		checkpoint   = flag.String("checkpoint", "", "serve: checkpoint file (enables crash recovery)")
		compactEvery = flag.Uint64("compact-every", 4096, "serve: compact after this many ingested events (0 = never)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for scale runs")
	)
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "verifyd: pprof listener:", err)
			}
		}()
	}
	var err error
	if *serve {
		err = runServe(os.Stdout, serveOpts{
			routers: *routers, waves: *waves,
			checkpoint: *checkpoint, compactEvery: *compactEvery,
		})
	} else {
		err = run(*violate, *grid, *seed, *workers, *queries, *queryAddr, *localChecks)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "verifyd:", err)
		os.Exit(1)
	}
}

// setUplinkLocalPref applies the Fig. 2 misconfiguration to the last BGP
// neighbor. A config with no neighbors gets a clear error instead of the
// out-of-range panic this used to be.
func setUplinkLocalPref(c *config.Router, lp uint32) error {
	if c.BGP == nil || len(c.BGP.Neighbors) == 0 {
		return errors.New("config has no BGP neighbors to misconfigure")
	}
	c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = lp
	return nil
}

func run(violate bool, grid int, seed int64, workers, queries int, queryAddr string, localChecks bool) error {
	var (
		n        *network.Network
		policies []verify.Policy
		sources  []string
	)
	if grid > 0 {
		g, err := network.BuildGridOSPF(seed, grid, grid)
		if err != nil {
			return err
		}
		g.Start()
		if err := g.Run(); err != nil {
			return err
		}
		n = g
		corner := route.MustPrefix(fmt.Sprintf("9.%d.%d.1/32", grid-1, grid-1))
		policies = []verify.Policy{{Kind: verify.Reachable, Prefix: corner}}
		for _, r := range g.Routers() {
			sources = append(sources, r.Name)
		}
	} else {
		pn, err := network.BuildPaper(seed, network.DefaultPaperOpts())
		if err != nil {
			return err
		}
		pn.Start()
		if err := pn.Run(); err != nil {
			return err
		}
		if violate {
			var cfgErr error
			if _, err := pn.UpdateConfig("r2", "set uplink local-pref 10", func(c *config.Router) {
				cfgErr = setUplinkLocalPref(c, 10)
			}); err != nil {
				return err
			}
			if cfgErr != nil {
				return fmt.Errorf("inject violation on r2: %w", cfgErr)
			}
			if err := pn.Run(); err != nil {
				return err
			}
		}
		n = pn.Network
		policies = []verify.Policy{
			{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"},
			{Kind: verify.NoLoop, Prefix: pn.P},
		}
		sources = []string{"r1", "r2", "r3"}
	}

	coord, nodes, teardown, err := dist.BuildFleet(n, nil)
	if err != nil {
		return err
	}
	defer teardown()
	fmt.Printf("fleet: %d nodes + coordinator %s\n", len(nodes), coord.Addr())

	reg := metrics.NewRegistry()
	stats, err := coord.VerifyWith(nodes, policies, sources, dist.VerifyOpts{Metrics: reg})
	if err != nil {
		return err
	}
	fmt.Printf("result: %s\n", stats.Report.Summary())
	for _, v := range stats.Report.Violations {
		fmt.Println("  violation:", v)
	}
	fmt.Printf("overhead: %d walks, %d messages, %d batches, %d frames, %d bytes on the wire\n",
		stats.Walks, stats.Messages, stats.Batches, stats.Frames, stats.Bytes)
	fmt.Printf("dist metrics: %s\n", reg)

	// The same round over the legacy transport — one dial and one JSON
	// envelope per message — to show what pooling and binary batching buy.
	lcoord, lnodes, lteardown, err := dist.BuildFleet(n, nil, dist.TransportOptions{Legacy: true})
	if err != nil {
		return err
	}
	lstats, err := lcoord.Verify(lnodes, policies, sources)
	lteardown()
	if err != nil {
		return err
	}
	fmt.Printf("legacy transport: %d frames, %d bytes (pooled+binary: %.1fx fewer frames, %.1fx fewer bytes)\n",
		lstats.Frames, lstats.Bytes,
		float64(lstats.Frames)/float64(max64(stats.Frames, 1)),
		float64(lstats.Bytes)/float64(max64(stats.Bytes, 1)))

	views := map[string]dist.LocalView{}
	for _, r := range n.Routers() {
		views[r.Name] = dist.LocalViewOf(r)
	}
	central, err := dist.CentralizedBytes(views)
	if err != nil {
		return err
	}
	fmt.Printf("centralized alternative would ship %d bytes of FIB state\n", central)

	// Same policy suite through the local parallel checker, for comparison
	// and to surface the verify.* instrumentation.
	tables := map[string]*fib.Table{}
	for _, r := range n.Routers() {
		tables[r.Name] = r.FIB
	}
	checker := verify.NewChecker(dataplane.NewWalker(n.Topo, dataplane.TableView(tables)), sources)
	checker.Workers = workers
	checker.Metrics = metrics.NewRegistry()
	rep := checker.Check(policies)
	fmt.Printf("local parallel checker: %s (%d walks, %d deduped)\n", rep.Summary(), rep.Walks, rep.Deduped)
	fmt.Printf("metrics: %s\n", checker.Metrics)

	// The delta path: re-verifying through the pipeline's incremental
	// equivalence classes and walk cache — a second tick on a quiet network
	// costs zero walks.
	pipe := hbverify.NewPipeline(n, sources)
	defer pipe.Close()
	pipe.Workers = workers
	pipe.Verify(policies)
	warm := pipe.Verify(policies)
	fmt.Printf("delta re-verify: %s (%d walks executed, %d cached, %d classes)\n",
		warm.Summary(), warm.Walks, warm.Cached, len(pipe.Classes()))

	// And the distributed equivalent: the pipeline keeps its own fleet,
	// ships FIB deltas only to dirty routers, and shares the walk cache
	// with the local path — a quiet round puts zero frames on the wire.
	dstats, err := pipe.VerifyDistributed(policies)
	if err != nil {
		return err
	}
	fmt.Printf("distributed delta re-verify: %d frames/%d bytes (%d cache-skipped, %d clean-skipped of %d walks)\n",
		dstats.Frames, dstats.Bytes, dstats.CacheSkipped, dstats.CleanSkipped, dstats.Walks)
	fmt.Printf("pipeline: %s\n", pipe.Summary())

	// Hybrid local-check mode: the first round walks everything and derives
	// per-router distance labels; subsequent quiet rounds are certified by
	// node-local invariant checks alone, with violations escalating to
	// targeted walks for just the affected forwarding classes.
	if localChecks {
		for round := 1; round <= 3; round++ {
			ls, err := pipe.VerifyLocalChecks(policies)
			if err != nil {
				return err
			}
			mode := "local"
			if ls.Relabeled {
				mode = "relabel"
			}
			fmt.Printf("local-check round %d (%s): %s — %d certified, %d escalated, %d violations; %d frames/%d bytes\n",
				round, mode, ls.Report.Summary(), ls.LocalCertified, ls.Escalated, ls.LocalViolations, ls.Frames, ls.Bytes)
		}
	}

	// Verification as a query service: point queries planned onto the
	// pipeline's shared walk cache and equivalence classes.
	if queries > 0 || queryAddr != "" {
		eng := pipe.ServeEngine(policies)
		defer eng.Close()
		if queries > 0 {
			runQueries(eng, policies, sources, queries)
		}
		if queryAddr != "" {
			fmt.Printf("query service on %s — try:\n", queryAddr)
			fmt.Printf("  curl 'http://%s/query?kind=reachability&source=%s&prefix=%s'\n",
				queryAddr, sources[0], policies[0].Prefix)
			fmt.Printf("  curl 'http://%s/stats'\n", queryAddr)
			return http.ListenAndServe(queryAddr, serve.Handler(eng))
		}
	}
	return nil
}

// runQueries drives the engine with concurrent mixed reachability queries
// — every (source, policy prefix) pair round-robin — and reports
// throughput, tail latency, and how much the shared plan cache absorbed.
func runQueries(eng *serve.Engine, policies []verify.Policy, sources []string, n int) {
	const clients = 4
	start := time.Now()
	var wg sync.WaitGroup
	var failed atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < n; i += clients {
				src := sources[i%len(sources)]
				p := policies[i%len(policies)].Prefix
				if _, err := eng.Query(serve.Reachability(src, p)); err != nil {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := eng.Stats()
	hist := eng.Metrics().Histogram("serve.query.latency")
	fmt.Printf("query service: %d queries from %d clients in %v (%.0f qps, %d failed)\n",
		st.Queries, clients, elapsed.Round(time.Millisecond),
		float64(st.Queries)/elapsed.Seconds(), failed.Load())
	fmt.Printf("query service: p50 %v, p99 %v; hit ratio %.2f (%d cache hits, %d coalesced, %d walks executed)\n",
		hist.Quantile(0.5).Round(time.Microsecond), hist.Quantile(0.99).Round(time.Microsecond),
		st.HitRatio(), st.PlanHits, st.Coalesced, st.Executed)
}

func max64(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type serveOpts struct {
	routers      int
	waves        int
	checkpoint   string
	compactEvery uint64
}

// runServe is the always-on §5 deployment shape: one goroutine per router
// streaming Cisco-style log lines through ciscolog.ParseReader into the
// stream daemon, which merges them deterministically, keeps the
// happens-before graph current through incremental inference, and bounds
// memory by compacting the capture window into a checkpoint. Restarting
// with the same -checkpoint path resumes exactly where the last compaction
// left off.
func runServe(w io.Writer, o serveOpts) error {
	if o.routers < 2 {
		return fmt.Errorf("serve mode needs at least 2 routers, got %d", o.routers)
	}
	fleet := stream.Fleet{Routers: o.routers, Waves: o.waves}
	reg := metrics.NewRegistry()
	d, err := stream.New(stream.Options{
		// Tighter windows than the offline default (whose 60s config
		// window would demand a minute of retained history): the synthetic
		// fleet's causality fits comfortably, and the window choice is what
		// makes compaction observable in a short run.
		Strategy:       hbr.Rules{Window: 500 * time.Millisecond, ConfigWindow: 5 * time.Second, CrossWindow: 500 * time.Millisecond},
		Metrics:        reg,
		SkewSlack:      2 * 200 * time.Millisecond, // twice the fleet's clock skew
		CheckpointPath: o.checkpoint,
		CompactEvery:   o.compactEvery,
		Resolve:        fleet.Resolver(),
	})
	if err != nil {
		return err
	}
	resumed := d.Log().TotalAppended()
	if resumed > 0 {
		fmt.Fprintf(w, "serve: recovered checkpoint %s — %d events already folded, window [%d,%d)\n",
			o.checkpoint, resumed, d.Log().FirstID(), resumed+1)
	}

	streams := make([]*stream.Stream, o.routers)
	for i := range streams {
		streams[i] = d.Register(fleet.RouterName(i))
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := range streams {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			streams[i].Consume(fleet.Reader(i))
		}()
	}
	wg.Wait()
	if err := d.Wait(); err != nil {
		return err
	}
	if err := d.Compact(); err != nil {
		return err
	}

	g := d.Graph()
	total := d.Log().TotalAppended()
	fmt.Fprintf(w, "serve: %d routers, %d events total (%d this run) in %v\n",
		o.routers, total, total-resumed, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(w, "serve: window holds %d events (first retained ID %d), %d compactions, %d checkpoints\n",
		d.Log().Len(), d.Log().FirstID(), reg.Counter("stream.compactions").Value(),
		reg.Counter("stream.checkpoints").Value())
	fmt.Fprintf(w, "serve: graph %d nodes, %d edges, pruned below ID %d\n",
		g.NodeCount(), len(g.Edges()), g.PrunedBelow())
	if o.checkpoint != "" {
		fmt.Fprintf(w, "serve: checkpoint written to %s — restart with the same flag to resume\n", o.checkpoint)
	}
	return nil
}
