// Command verifyd demonstrates §5's distributed verification: it converges
// a scenario, starts one TCP verification node per router plus a
// coordinator, runs the policy suite through the fleet, and reports the
// message/byte overhead against the centralized alternative.
//
// Usage:
//
//	verifyd                   # paper network, healthy
//	verifyd -violate          # paper network with the Fig. 2 misconfig
//	verifyd -grid 4           # 4x4 OSPF grid reachability sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"hbverify"
	"hbverify/internal/config"
	"hbverify/internal/dataplane"
	"hbverify/internal/dist"
	"hbverify/internal/fib"
	"hbverify/internal/metrics"
	"hbverify/internal/network"
	"hbverify/internal/route"
	"hbverify/internal/verify"
)

func main() {
	var (
		violate = flag.Bool("violate", false, "inject the Fig. 2 misconfiguration first")
		grid    = flag.Int("grid", 0, "use an NxN OSPF grid instead of the paper network")
		seed    = flag.Int64("seed", 1, "simulation seed")
		workers = flag.Int("workers", 0, "local verification walk pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*violate, *grid, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "verifyd:", err)
		os.Exit(1)
	}
}

func run(violate bool, grid int, seed int64, workers int) error {
	var (
		n        *network.Network
		policies []verify.Policy
		sources  []string
	)
	if grid > 0 {
		g, err := network.BuildGridOSPF(seed, grid, grid)
		if err != nil {
			return err
		}
		g.Start()
		if err := g.Run(); err != nil {
			return err
		}
		n = g
		corner := route.MustPrefix(fmt.Sprintf("9.%d.%d.1/32", grid-1, grid-1))
		policies = []verify.Policy{{Kind: verify.Reachable, Prefix: corner}}
		for _, r := range g.Routers() {
			sources = append(sources, r.Name)
		}
	} else {
		pn, err := network.BuildPaper(seed, network.DefaultPaperOpts())
		if err != nil {
			return err
		}
		pn.Start()
		if err := pn.Run(); err != nil {
			return err
		}
		if violate {
			if _, err := pn.UpdateConfig("r2", "set uplink local-pref 10", func(c *config.Router) {
				c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
			}); err != nil {
				return err
			}
			if err := pn.Run(); err != nil {
				return err
			}
		}
		n = pn.Network
		policies = []verify.Policy{
			{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"},
			{Kind: verify.NoLoop, Prefix: pn.P},
		}
		sources = []string{"r1", "r2", "r3"}
	}

	coord, nodes, teardown, err := dist.BuildFleet(n, nil)
	if err != nil {
		return err
	}
	defer teardown()
	fmt.Printf("fleet: %d nodes + coordinator %s\n", len(nodes), coord.Addr())

	reg := metrics.NewRegistry()
	stats, err := coord.VerifyWith(nodes, policies, sources, dist.VerifyOpts{Metrics: reg})
	if err != nil {
		return err
	}
	fmt.Printf("result: %s\n", stats.Report.Summary())
	for _, v := range stats.Report.Violations {
		fmt.Println("  violation:", v)
	}
	fmt.Printf("overhead: %d walks, %d messages, %d batches, %d frames, %d bytes on the wire\n",
		stats.Walks, stats.Messages, stats.Batches, stats.Frames, stats.Bytes)
	fmt.Printf("dist metrics: %s\n", reg)

	// The same round over the legacy transport — one dial and one JSON
	// envelope per message — to show what pooling and binary batching buy.
	lcoord, lnodes, lteardown, err := dist.BuildFleet(n, nil, dist.TransportOptions{Legacy: true})
	if err != nil {
		return err
	}
	lstats, err := lcoord.Verify(lnodes, policies, sources)
	lteardown()
	if err != nil {
		return err
	}
	fmt.Printf("legacy transport: %d frames, %d bytes (pooled+binary: %.1fx fewer frames, %.1fx fewer bytes)\n",
		lstats.Frames, lstats.Bytes,
		float64(lstats.Frames)/float64(max64(stats.Frames, 1)),
		float64(lstats.Bytes)/float64(max64(stats.Bytes, 1)))

	views := map[string]dist.LocalView{}
	for _, r := range n.Routers() {
		views[r.Name] = dist.LocalViewOf(r)
	}
	central, err := dist.CentralizedBytes(views)
	if err != nil {
		return err
	}
	fmt.Printf("centralized alternative would ship %d bytes of FIB state\n", central)

	// Same policy suite through the local parallel checker, for comparison
	// and to surface the verify.* instrumentation.
	tables := map[string]*fib.Table{}
	for _, r := range n.Routers() {
		tables[r.Name] = r.FIB
	}
	checker := verify.NewChecker(dataplane.NewWalker(n.Topo, dataplane.TableView(tables)), sources)
	checker.Workers = workers
	checker.Metrics = metrics.NewRegistry()
	rep := checker.Check(policies)
	fmt.Printf("local parallel checker: %s (%d walks, %d deduped)\n", rep.Summary(), rep.Walks, rep.Deduped)
	fmt.Printf("metrics: %s\n", checker.Metrics)

	// The delta path: re-verifying through the pipeline's incremental
	// equivalence classes and walk cache — a second tick on a quiet network
	// costs zero walks.
	pipe := hbverify.NewPipeline(n, sources)
	defer pipe.Close()
	pipe.Workers = workers
	pipe.Verify(policies)
	warm := pipe.Verify(policies)
	fmt.Printf("delta re-verify: %s (%d walks executed, %d cached, %d classes)\n",
		warm.Summary(), warm.Walks, warm.Cached, len(pipe.Classes()))

	// And the distributed equivalent: the pipeline keeps its own fleet,
	// ships FIB deltas only to dirty routers, and shares the walk cache
	// with the local path — a quiet round puts zero frames on the wire.
	dstats, err := pipe.VerifyDistributed(policies)
	if err != nil {
		return err
	}
	fmt.Printf("distributed delta re-verify: %d frames/%d bytes (%d cache-skipped, %d clean-skipped of %d walks)\n",
		dstats.Frames, dstats.Bytes, dstats.CacheSkipped, dstats.CleanSkipped, dstats.Walks)
	fmt.Printf("pipeline: %s\n", pipe.Summary())
	return nil
}

func max64(a, b int) int {
	if a > b {
		return a
	}
	return b
}
