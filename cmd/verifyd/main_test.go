package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"hbverify/internal/config"
)

func TestPaperHealthy(t *testing.T) {
	if err := run(false, 0, 1, 0, 0, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestPaperViolated(t *testing.T) {
	if err := run(true, 0, 1, 0, 0, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestGridMode(t *testing.T) {
	if err := run(false, 3, 1, 0, 0, "", false); err != nil {
		t.Fatal(err)
	}
}

// TestQueryMode drives the in-process query demo (-queries) end to end.
func TestQueryMode(t *testing.T) {
	if err := run(false, 0, 1, 0, 64, "", false); err != nil {
		t.Fatal(err)
	}
}

// TestSetUplinkLocalPrefGuard pins the no-neighbor fix: a config without
// BGP neighbors used to panic with an out-of-range index; now it reports
// a clear error and leaves the config untouched.
func TestSetUplinkLocalPrefGuard(t *testing.T) {
	var c config.Router
	if err := setUplinkLocalPref(&c, 10); err == nil {
		t.Fatal("empty neighbor list accepted")
	} else if !strings.Contains(err.Error(), "no BGP neighbors") {
		t.Fatalf("unhelpful error: %v", err)
	}

	c.BGP = &config.BGPConfig{Neighbors: []config.Neighbor{{}, {}}}
	if err := setUplinkLocalPref(&c, 10); err != nil {
		t.Fatal(err)
	}
	if c.BGP.Neighbors[1].LocalPref != 10 {
		t.Fatalf("last neighbor localpref = %d, want 10", c.BGP.Neighbors[1].LocalPref)
	}
	if c.BGP.Neighbors[0].LocalPref != 0 {
		t.Fatal("guarded setter touched the wrong neighbor")
	}
}

// TestServeModeCheckpointRestart runs serve mode twice against the same
// checkpoint: the first run streams, compacts, and checkpoints; the second
// must recover and replay to an identical event total without re-ingesting
// what the checkpoint already covers.
func TestServeModeCheckpointRestart(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "verifyd.ckpt")
	o := serveOpts{routers: 3, waves: 400, checkpoint: ckpt, compactEvery: 256}

	var first bytes.Buffer
	if err := runServe(&first, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "checkpoint written") {
		t.Fatalf("first run wrote no checkpoint:\n%s", first.String())
	}

	var second bytes.Buffer
	if err := runServe(&second, o); err != nil {
		t.Fatal(err)
	}
	out := second.String()
	if !strings.Contains(out, "recovered checkpoint") {
		t.Fatalf("second run did not recover:\n%s", out)
	}
	if !strings.Contains(out, "(0 this run)") {
		t.Fatalf("second run re-ingested events past the final checkpoint:\n%s", out)
	}
}

func TestServeModeRejectsTinyFleet(t *testing.T) {
	if err := runServe(&bytes.Buffer{}, serveOpts{routers: 1, waves: 10}); err == nil {
		t.Fatal("single-router fleet accepted")
	}
}

// TestLocalCheckMode drives the hybrid local-check loop end to end: a
// relabel round, quiet certified rounds, no spurious violations on the
// healthy paper network.
func TestLocalCheckMode(t *testing.T) {
	if err := run(false, 0, 1, 0, 0, "", true); err != nil {
		t.Fatal(err)
	}
}

// TestLocalCheckModeViolated: the Fig-2 misconfiguration must still
// surface through the local-check loop (escalated walks find it).
func TestLocalCheckModeViolated(t *testing.T) {
	if err := run(true, 0, 1, 0, 0, "", true); err != nil {
		t.Fatal(err)
	}
}
