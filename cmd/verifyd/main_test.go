package main

import "testing"

func TestPaperHealthy(t *testing.T) {
	if err := run(false, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPaperViolated(t *testing.T) {
	if err := run(true, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGridMode(t *testing.T) {
	if err := run(false, 3, 1, 0); err != nil {
		t.Fatal(err)
	}
}
