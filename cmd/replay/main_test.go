package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hbverify/internal/scenario"
)

func TestGenerateAndAnalyze(t *testing.T) {
	dir := t.TempDir()
	if err := generate(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	haveMap := false
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".log":
			logs = append(logs, filepath.Join(dir, e.Name()))
		case ".map":
			haveMap = true
		}
	}
	if len(logs) != 5 || !haveMap {
		t.Fatalf("generated %d logs, map=%v", len(logs), haveMap)
	}
	if err := analyze(logs, false); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	if err := analyze([]string{"/nonexistent/r1.log"}, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunScenarioSeed(t *testing.T) {
	var b strings.Builder
	failed, err := runScenario(scenario.Config{Seed: 1}, "", &b)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("seed 1 failed an oracle:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "all oracles passed") {
		t.Fatalf("unexpected output:\n%s", b.String())
	}
}

// TestRunScenarioSchedule writes a forced-failure artifact and replays it
// through the exact path the printed repro command uses.
func TestRunScenarioSchedule(t *testing.T) {
	cfg, err := scenario.Materialize(scenario.Config{Seed: 3, Bug: scenario.BugSkipRollback})
	if err != nil {
		t.Fatal(err)
	}
	res := scenario.Run(cfg)
	if res.Failure == nil {
		t.Fatal("forced bug did not fail")
	}
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := scenario.WriteArtifact(path, scenario.Artifact{Config: res.Config, Failure: *res.Failure}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	failed, err := runScenario(scenario.Config{}, path, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("artifact replay did not reproduce the failure:\n%s", b.String())
	}
	if !strings.Contains(b.String(), res.Failure.Oracle) {
		t.Fatalf("replay output does not name oracle %q:\n%s", res.Failure.Oracle, b.String())
	}
}

func TestRunScenarioBadArtifact(t *testing.T) {
	if _, err := runScenario(scenario.Config{}, "/nonexistent/artifact.json", &strings.Builder{}); err == nil {
		t.Fatal("missing artifact accepted")
	}
}

func TestLoadResolverWithoutMap(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "r1.log")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	resolve, err := loadResolver([]string{f})
	if err != nil {
		t.Fatal(err)
	}
	if resolve == nil {
		t.Fatal("nil resolver")
	}
}
