package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndAnalyze(t *testing.T) {
	dir := t.TempDir()
	if err := generate(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	haveMap := false
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".log":
			logs = append(logs, filepath.Join(dir, e.Name()))
		case ".map":
			haveMap = true
		}
	}
	if len(logs) != 5 || !haveMap {
		t.Fatalf("generated %d logs, map=%v", len(logs), haveMap)
	}
	if err := analyze(logs, false); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	if err := analyze([]string{"/nonexistent/r1.log"}, false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadResolverWithoutMap(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "r1.log")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	resolve, err := loadResolver([]string{f})
	if err != nil {
		t.Fatal(err)
	}
	if resolve == nil {
		t.Fatal("nil resolver")
	}
}
