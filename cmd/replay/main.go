// Command replay is the §7 pipeline as a tool: it parses Cisco-IOS-style
// router logs, infers the happens-before graph, and reports provenance and
// root causes for every FIB update — plus the snapshot-consistency verdict.
//
// Usage:
//
//	replay -gen logs/        # generate the Fig. 5 logs into logs/<router>.log
//	replay logs/*.log        # parse logs (router name = file basename)
//	replay -dot logs/*.log   # also emit the inferred HBG as DOT
//	replay -seed 7           # run randomized scenario seed 7 end to end
//	replay -schedule f.json  # replay a scenario failure artifact exactly
package main

import (
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/ciscolog"
	"hbverify/internal/config"
	"hbverify/internal/hbr"
	"hbverify/internal/network"
	"hbverify/internal/scenario"
	"hbverify/internal/snapshot"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate Fig. 5 logs into this directory and exit")
		dot      = flag.Bool("dot", false, "print the inferred HBG as Graphviz DOT")
		seed     = flag.Int64("seed", 0, "run the randomized scenario with this seed (nonzero)")
		shape    = flag.String("shape", "", "override the scenario topology shape (ring|mesh|fattree|fattree-k4|isp-rr)")
		mix      = flag.String("mix", "", "override the scenario protocol mix (ospf+bgp|ospf|rip|eigrp)")
		rounds   = flag.Int("rounds", 0, "override the scenario churn-round count")
		bug      = flag.String("bug", "", "inject a known bug (e.g. drop-ecmp-branch) so an oracle must catch it")
		schedule = flag.String("schedule", "", "replay a scenario failure artifact (JSON) exactly")
	)
	flag.Parse()
	if *gen != "" {
		if err := generate(*gen); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		return
	}
	if *seed != 0 || *schedule != "" {
		cfg := scenario.Config{Seed: *seed, Shape: *shape, Mix: *mix, Rounds: *rounds, Bug: *bug}
		failed, err := runScenario(cfg, *schedule, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		if failed {
			os.Exit(3)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "replay: no log files (try -gen logs/ first)")
		os.Exit(2)
	}
	if err := analyze(flag.Args(), *dot); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

// runScenario executes one randomized scenario — either fresh from cfg
// or replaying a failure artifact byte-exactly — and reports the oracle
// verdict. It returns failed=true (exit code 3) when an oracle fails, so
// a reproduced failure is distinguishable from a tool error.
func runScenario(cfg scenario.Config, schedulePath string, out io.Writer) (failed bool, err error) {
	if schedulePath != "" {
		a, err := scenario.ReadArtifact(schedulePath)
		if err != nil {
			return false, err
		}
		cfg = a.Config
		if cfg.Schedule == nil {
			cfg.Schedule = []scenario.Event{}
		}
		fmt.Fprintf(out, "replaying artifact %s (expecting oracle %s to fail)\n", schedulePath, a.Failure.Oracle)
	}
	mat, err := scenario.Materialize(cfg)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(out, "scenario seed=%d shape=%s mix=%s routers=%d rounds=%d (%d churn events)\n",
		mat.Seed, mat.Shape, mat.Mix, mat.Routers, mat.Rounds, len(mat.Schedule))
	res := scenario.Run(cfg)
	if res.Failure != nil {
		if schedulePath != "" {
			// Already minimized: report without re-shrinking.
			fmt.Fprint(out, scenario.FailureReport(scenario.Artifact{Config: res.Config, Failure: *res.Failure}, ""))
		} else {
			_, report := scenario.ReportFailure(res.Config, *res.Failure, "")
			fmt.Fprint(out, report)
		}
		return true, nil
	}
	fmt.Fprintf(out, "ok: %d rounds, %d IOs, all oracles passed\n", res.Rounds, res.IOs)
	return false, nil
}

// generate runs the §7 scenario and writes per-router IOS-style logs.
func generate(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	pn, err := network.BuildPaper(1, network.DefaultPaperOpts())
	if err != nil {
		return err
	}
	pn.SoftReconfigDelay = 25 * time.Second
	pn.Start()
	if err := pn.Run(); err != nil {
		return err
	}
	if _, err := pn.UpdateConfig("r1", "neighbor localpref 200", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 200
	}); err != nil {
		return err
	}
	if err := pn.Run(); err != nil {
		return err
	}
	byRouter := map[string][]capture.IO{}
	for _, io := range pn.Log.All() {
		byRouter[io.Router] = append(byRouter[io.Router], io)
	}
	for router, ios := range byRouter {
		f, err := os.Create(filepath.Join(dir, router+".log"))
		if err != nil {
			return err
		}
		if err := ciscolog.EmitLog(f, ios); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// A topology hint file so analysis can resolve peer addresses.
	hints, err := os.Create(filepath.Join(dir, "addresses.map"))
	if err != nil {
		return err
	}
	defer hints.Close()
	for _, r := range pn.Routers() {
		fmt.Fprintf(hints, "%s %s\n", r.Topo.Loopback, r.Name)
		for _, i := range r.Topo.Interfaces() {
			fmt.Fprintf(hints, "%s %s\n", i.Addr, r.Name)
		}
	}
	fmt.Printf("wrote %d router logs + addresses.map to %s\n", len(byRouter), dir)
	return nil
}

// analyze parses the logs and reports root causes.
func analyze(files []string, dot bool) error {
	resolver, err := loadResolver(files)
	if err != nil {
		return err
	}
	parser := ciscolog.NewParser(resolver)
	var all []capture.IO
	for _, path := range files {
		if strings.HasSuffix(path, "addresses.map") {
			continue
		}
		router := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		ios, err := parser.ParseLog(router, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, ios...)
		fmt.Printf("parsed %4d events from %s\n", len(ios), path)
	}
	g := hbr.Rules{}.Infer(all)
	fmt.Printf("inferred HBG: %d vertices, %d edges\n", g.NodeCount(), g.EdgeCount())

	res := snapshot.Check(g, nil)
	if res.Consistent {
		fmt.Println("snapshot: consistent")
	} else {
		fmt.Printf("snapshot: INCONSISTENT, wait for %v (%d unmatched receives)\n", res.WaitFor, len(res.Missing))
	}

	fmt.Println("root causes of FIB updates:")
	for _, io := range all {
		if io.Type != capture.FIBInstall && io.Type != capture.FIBRemove {
			continue
		}
		roots := g.RootCauses(io.ID)
		for _, root := range roots {
			if root.ID == io.ID {
				continue // self-rooted: uninteresting
			}
			fmt.Printf("  %s  <=  %s\n", io, root)
		}
	}
	if dot {
		fmt.Println(g.DOT())
	}
	return nil
}

// loadResolver reads addresses.map if present among/alongside the inputs.
func loadResolver(files []string) (ciscolog.Resolver, error) {
	var path string
	for _, f := range files {
		if strings.HasSuffix(f, "addresses.map") {
			path = f
			break
		}
	}
	if path == "" && len(files) > 0 {
		candidate := filepath.Join(filepath.Dir(files[0]), "addresses.map")
		if _, err := os.Stat(candidate); err == nil {
			path = candidate
		}
	}
	m := map[netip.Addr]string{}
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				continue
			}
			a, err := netip.ParseAddr(fields[0])
			if err != nil {
				continue
			}
			m[a] = fields[1]
		}
	}
	return func(a netip.Addr) string { return m[a] }, nil
}
