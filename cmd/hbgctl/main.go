// Command hbgctl runs the paper's scenarios and prints verification
// results, happens-before graphs, and root-cause diagnoses.
//
// Usage:
//
//	hbgctl -scenario fig1            # healthy convergence (Fig. 1a/1b)
//	hbgctl -scenario fig2            # local-pref misconfiguration (Fig. 2)
//	hbgctl -scenario fig2 -repair    # ... and roll back the root cause
//	hbgctl -scenario fig5            # §7 feasibility timings
//	hbgctl -scenario fig2 -dot       # emit the HBG in Graphviz format
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hbverify"
	"hbverify/internal/capture"
	"hbverify/internal/config"
	"hbverify/internal/network"
	"hbverify/internal/verify"
)

func main() {
	var (
		scenario = flag.String("scenario", "fig2", "scenario: fig1, fig2, fig5")
		seed     = flag.Int64("seed", 1, "simulation seed")
		dot      = flag.Bool("dot", false, "print the happens-before graph as Graphviz DOT")
		text     = flag.Bool("text", false, "print the happens-before graph as text")
		doRepair = flag.Bool("repair", false, "roll back the root cause when a violation is found")
	)
	flag.Parse()
	if err := run(*scenario, *seed, *dot, *text, *doRepair); err != nil {
		fmt.Fprintln(os.Stderr, "hbgctl:", err)
		os.Exit(1)
	}
}

func run(scenario string, seed int64, dot, text, doRepair bool) error {
	opt := network.DefaultPaperOpts()
	pn, err := network.BuildPaper(seed, opt)
	if err != nil {
		return err
	}
	if scenario == "fig5" {
		pn.SoftReconfigDelay = 25 * time.Second
	}
	pn.Start()
	if err := pn.Run(); err != nil {
		return err
	}
	pipe := hbverify.NewPipeline(pn.Network, []string{"r1", "r2", "r3"})
	policies := []verify.Policy{
		{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"},
		{Kind: verify.NoLoop, Prefix: pn.P},
		{Kind: verify.NoBlackhole, Prefix: pn.P},
	}

	switch scenario {
	case "fig1":
		// Already converged; nothing further to inject.
	case "fig2":
		if _, err := pn.UpdateConfig("r2", "set uplink local-pref 10", func(c *config.Router) {
			c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
		}); err != nil {
			return err
		}
	case "fig5":
		if _, err := pn.UpdateConfig("r1", "neighbor localpref 200", func(c *config.Router) {
			c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 200
		}); err != nil {
			return err
		}
		policies[0].Expect = "e2" // still the operator policy; now violated
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
	if err := pn.Run(); err != nil {
		return err
	}

	fmt.Println("== state ==")
	fmt.Println(pipe.Summary())
	for _, r := range []string{"r1", "r2", "r3"} {
		if e, ok := pn.Router(r).FIB.Exact(pn.P); ok {
			fmt.Printf("  %s: %s\n", r, e)
		} else {
			fmt.Printf("  %s: no route for %s\n", r, pn.P)
		}
	}

	fmt.Println("== verification ==")
	d := pipe.Detect(policies)
	fmt.Println(" ", d.Report.Summary())
	for _, v := range d.Report.Violations {
		fmt.Println("  violation:", v)
	}
	if !d.Report.OK() {
		fmt.Println("  fault:", d.Fault)
		for _, root := range d.Roots {
			fmt.Println("  root cause:", root)
		}
	}

	if doRepair && !d.Report.OK() {
		fmt.Println("== repair ==")
		d2, err := pipe.DetectAndRepair(policies)
		if err != nil {
			return err
		}
		fmt.Println(" ", d2)
		if err := pn.Run(); err != nil {
			return err
		}
		after := pipe.Verify(policies)
		fmt.Println("  post-repair:", after.Summary())
	}

	if dot {
		fmt.Println(pipe.Graph().DOT())
	}
	if text {
		fmt.Println(pipe.Graph().Text())
	}
	if scenario == "fig5" {
		printFig5Timings(pn)
	}
	return nil
}

// printFig5Timings reports the §7 latency chain on r1.
func printFig5Timings(pn *network.PaperNet) {
	fmt.Println("== fig5 timings (r1) ==")
	ios := pn.Log.ForRouter("r1")
	var cc, soft, fib, send capture.IO
	for _, io := range ios { // last config change and soft reconfig
		switch io.Type {
		case capture.ConfigChange:
			cc = io
		case capture.SoftReconfig:
			soft = io
		}
	}
	for _, io := range ios { // first FIB install / advert after the reconfig
		if io.ID <= soft.ID {
			continue
		}
		if io.Type == capture.FIBInstall && fib.ID == 0 {
			fib = io
		}
		if io.Type == capture.SendAdvert && send.ID == 0 {
			send = io
		}
	}
	if soft.ID != 0 && cc.ID != 0 {
		fmt.Printf("  config -> soft reconfiguration: %v\n", soft.Time.Sub(cc.Time))
	}
	if fib.ID != 0 && soft.ID != 0 {
		fmt.Printf("  soft reconfiguration -> FIB install: %v\n", fib.Time.Sub(soft.Time))
	}
	if send.ID != 0 && fib.ID != 0 {
		fmt.Printf("  FIB install -> advertisement: %v\n", send.Time.Sub(fib.Time))
	}
}
