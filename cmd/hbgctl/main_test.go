package main

import "testing"

func TestScenarios(t *testing.T) {
	for _, sc := range []string{"fig1", "fig2", "fig5"} {
		if err := run(sc, 1, false, false, false); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
}

func TestFig2WithRepairAndDumps(t *testing.T) {
	if err := run("fig2", 1, true, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run("nope", 1, false, false, false); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
