// Benchmark harness: one benchmark per paper artifact (the paper is a
// position paper with five figures and no tables; E6–E12 cover the
// quantitative claims made in prose). Each benchmark prints the rows or
// series the corresponding figure/claim reports — run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.
package hbverify

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/ciscolog"
	"hbverify/internal/config"
	"hbverify/internal/dataplane"
	"hbverify/internal/dist"
	"hbverify/internal/eqclass"
	"hbverify/internal/fib"
	"hbverify/internal/hbg"
	"hbverify/internal/hbr"
	"hbverify/internal/metrics"
	"hbverify/internal/modelck"
	"hbverify/internal/netsim"
	"hbverify/internal/network"
	"hbverify/internal/repair"
	"hbverify/internal/route"
	"hbverify/internal/serve"
	"hbverify/internal/snapshot"
	"hbverify/internal/stream"
	"hbverify/internal/topology"
	"hbverify/internal/trie"
	"hbverify/internal/verify"
	"hbverify/internal/whatif"
)

// printOnce gates the human-readable result tables so repeated b.N
// calibration runs do not spam the output.
var printOnce sync.Map

func once(name string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fn()
	}
}

func mustPaper(b *testing.B, seed int64, opt network.PaperOpts) *network.PaperNet {
	b.Helper()
	pn, err := network.BuildPaper(seed, opt)
	if err != nil {
		b.Fatal(err)
	}
	return pn
}

func runNet(b *testing.B, pn *network.PaperNet) {
	b.Helper()
	pn.Start()
	if err := pn.Run(); err != nil {
		b.Fatal(err)
	}
}

func misconfigR2(b *testing.B, pn *network.PaperNet, lp uint32) capture.IO {
	b.Helper()
	io, err := pn.UpdateConfig("r2", fmt.Sprintf("set uplink local-pref %d", lp), func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = lp
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		b.Fatal(err)
	}
	return io
}

var internalSources = []string{"r1", "r2", "r3"}

// ---------------------------------------------------------------------------
// E1 — Fig. 1a/1b: convergence of the running example.
// ---------------------------------------------------------------------------

func BenchmarkFig1Convergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pn := mustPaper(b, 1, network.DefaultPaperOpts())
		runNet(b, pn)
	}
	b.StopTimer()
	pn := mustPaper(b, 1, network.DefaultPaperOpts())
	runNet(b, pn)
	once("fig1", func() {
		fmt.Println("\n[E1/Fig1] converged state (policy: prefer R2's uplink)")
		fmt.Printf("  %-4s %-28s %-14s\n", "rtr", "Loc-RIB best for P", "FIB next hop")
		for _, r := range internalSources {
			best := pn.Router(r).BGP.LocRIB()[pn.P]
			e, _ := pn.Router(r).FIB.Exact(pn.P)
			fmt.Printf("  %-4s lp=%-3d via %-16s %v\n", r, best.Attrs.EffectiveLocalPref(), best.NextHop, e.NextHop)
		}
		fmt.Printf("  converged at t=%v with %d control-plane I/Os\n", pn.Sched.Now(), pn.Log.Len())
	})
}

// ---------------------------------------------------------------------------
// E2 — Fig. 1c: snapshot consistency. Sweep collection cuts across the
// Fig. 1a -> 1b transition; count phantom loops under the naive verifier
// versus the HBG-gated verifier (plus the no-protocol-rules ablation).
// ---------------------------------------------------------------------------

func fig1Transition(b *testing.B, seed int64) (*network.PaperNet, []capture.IO) {
	b.Helper()
	opt := network.DefaultPaperOpts()
	opt.AdvertiseE2 = false
	pn := mustPaper(b, seed, opt)
	runNet(b, pn)
	if _, err := pn.UpdateConfig("e2", "originate P", func(c *config.Router) {
		c.BGP.Networks = []netip.Prefix{network.PrefixP}
	}); err != nil {
		b.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		b.Fatal(err)
	}
	return pn, pn.Log.All()
}

func BenchmarkFig1cSnapshotConsistency(b *testing.B) {
	pn, ios := fig1Transition(b, 1)
	rules := func(x []capture.IO) *hbg.Graph { return hbr.Rules{}.Infer(capture.StripOracle(x)) }
	naiveInfer := func(x []capture.IO) *hbg.Graph { return hbr.Timestamp{}.Infer(capture.StripOracle(x)) }

	// Candidate cuts: every event boundary on r2 during the transition.
	var cuts []snapshot.Cut
	for _, io := range ios {
		if io.Router == "r2" && io.Prefix == pn.P {
			cuts = append(cuts, snapshot.Cut{"r2": io.Time - 1})
		}
	}
	policy := []verify.Policy{{Kind: verify.NoLoop, Prefix: pn.P}}
	type counts struct{ phantoms, waits, verified int }
	sweep := func(gated bool, infer snapshot.Infer) counts {
		var c counts
		for _, cut := range cuts {
			collected := snapshot.Collect(ios, cut)
			if gated {
				res := snapshot.Check(infer(collected), nil)
				if !res.Consistent {
					c.waits++
					collected, _, _ = snapshot.ConsistentCollect(ios, cut, infer, nil)
				}
			}
			fibs := snapshot.BuildFIBs(collected)
			w := dataplane.NewWalker(pn.Topo, dataplane.SnapshotView(fibs))
			rep := verify.NewChecker(w, internalSources).Check(policy)
			c.verified++
			if !rep.OK() {
				c.phantoms++
			}
		}
		return c
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep(true, rules)
	}
	b.StopTimer()
	naive := sweep(false, nil)
	gated := sweep(true, rules)
	ablation := sweep(true, naiveInfer)
	// Can each inference settle on the *complete* log? The ablation never
	// can (timestamp chains have no cross-router send/recv edges), so it
	// would block verification forever.
	fullRules := snapshot.Check(rules(ios), nil).Consistent
	fullTS := snapshot.Check(naiveInfer(ios), nil).Consistent
	once("fig1c", func() {
		fmt.Println("\n[E2/Fig1c] phantom loops across", len(cuts), "staggered snapshot cuts")
		fmt.Printf("  %-34s %-9s %-7s %s\n", "snapshotter", "phantoms", "waits", "settles on full log?")
		fmt.Printf("  %-34s %-9d %-7s %s\n", "naive (no HBG)", naive.phantoms, "-", "n/a")
		fmt.Printf("  %-34s %-9d %-7d %v\n", "HBG-gated (rules)", gated.phantoms, gated.waits, fullRules)
		fmt.Printf("  %-34s %-9d %-7d %v   <- ablation\n", "HBG-gated (timestamp chains only)", ablation.phantoms, ablation.waits, fullTS)
	})
}

// ---------------------------------------------------------------------------
// E3 — Fig. 2: the local-pref misconfiguration and its detection.
// ---------------------------------------------------------------------------

func BenchmarkFig2Violation(b *testing.B) {
	b.ReportAllocs()
	var lastReport verify.Report
	for i := 0; i < b.N; i++ {
		pn := mustPaper(b, 1, network.DefaultPaperOpts())
		runNet(b, pn)
		misconfigR2(b, pn, 10)
		pipe := NewPipeline(pn.Network, internalSources)
		lastReport = pipe.Verify([]verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}})
	}
	b.StopTimer()
	once("fig2", func() {
		fmt.Println("\n[E3/Fig2] after LP-10 misconfiguration on r2:")
		fmt.Println("  ", lastReport.Summary())
		for _, v := range lastReport.Violations {
			fmt.Println("   ", v)
		}
	})
}

// ---------------------------------------------------------------------------
// E4 — Fig. 4: the happens-before graph of the Fig. 2 scenario.
// ---------------------------------------------------------------------------

func BenchmarkFig4HBG(b *testing.B) {
	pn := mustPaper(b, 1, network.DefaultPaperOpts())
	runNet(b, pn)
	mark := pn.Log.Len()
	cc := misconfigR2(b, pn, 10)
	slice := capture.StripOracle(pn.Log.All()[mark:])
	var g *hbg.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = hbr.Rules{}.Infer(slice)
	}
	b.StopTimer()
	var fault capture.IO
	for _, io := range pn.Log.All()[mark:] {
		if io.Router == "r1" && io.Type == capture.FIBInstall && io.Prefix == pn.P {
			fault = io
		}
	}
	roots := g.RootCauses(fault.ID)
	m := hbr.Evaluate(g, pn.Log.All()[mark:])
	once("fig4", func() {
		fmt.Println("\n[E4/Fig4] inferred HBG over the misconfiguration window")
		fmt.Printf("  vertices=%d edges=%d precision=%.2f recall=%.2f\n",
			g.NodeCount(), g.EdgeCount(), m.Precision, m.Recall)
		fmt.Println("  fault vertex:", fault)
		for _, r := range roots {
			match := ""
			if r.ID == cc.ID {
				match = "  (= the Fig. 4 root: R2 config change)"
			}
			fmt.Printf("  root cause: %v%s\n", r, match)
		}
		for _, io := range g.Provenance(fault.ID) {
			fmt.Println("    ", io)
		}
	})
}

// ---------------------------------------------------------------------------
// E5 — Fig. 5 / §7: feasibility timings through the IOS log pipeline.
// ---------------------------------------------------------------------------

func BenchmarkFig5Feasibility(b *testing.B) {
	pn := mustPaper(b, 1, network.DefaultPaperOpts())
	pn.SoftReconfigDelay = 25 * time.Second
	runNet(b, pn)
	mark := pn.Log.Len()
	if _, err := pn.UpdateConfig("r1", "neighbor localpref 200", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 200
	}); err != nil {
		b.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		b.Fatal(err)
	}
	interesting := pn.Log.All()[mark:]
	resolve := func(a netip.Addr) string { return pn.Topo.OwnerOf(a) }

	var parsed []capture.IO
	var g *hbg.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		parsed, err = ciscolog.RoundTrip(interesting, resolve)
		if err != nil {
			b.Fatal(err)
		}
		g = hbr.Rules{}.Infer(parsed)
	}
	b.StopTimer()

	pick := func(router string, typ capture.Type, after netsim.VirtualTime) capture.IO {
		for _, io := range parsed {
			if io.Router == router && io.Type == typ && io.Time >= after {
				return io
			}
		}
		return capture.IO{}
	}
	cc := pick("r1", capture.ConfigChange, 0)
	soft := pick("r1", capture.SoftReconfig, cc.Time)
	fibIO := pick("r1", capture.FIBInstall, soft.Time)
	send := pick("r1", capture.SendAdvert, soft.Time)
	r3recv := pick("r3", capture.RecvAdvert, soft.Time)
	r3fib := pick("r3", capture.FIBInstall, r3recv.Time)
	once("fig5", func() {
		fmt.Println("\n[E5/Fig5] feasibility timings (paper-measured vs ours), via IOS log round trip")
		fmt.Printf("  %-38s %-10s %-10s\n", "edge", "paper", "measured")
		fmt.Printf("  %-38s %-10s %-10v\n", "TTY config -> soft reconfiguration", "25s", soft.Time.Sub(cc.Time))
		fmt.Printf("  %-38s %-10s %-10v\n", "soft reconfig -> FIB install (r1)", "4ms", fibIO.Time.Sub(soft.Time))
		fmt.Printf("  %-38s %-10s %-10v\n", "FIB install -> advertisement (r1)", "4ms", send.Time.Sub(fibIO.Time))
		fmt.Printf("  %-38s %-10s %-10v\n", "advert propagation (r1 -> r3)", "8ms", r3recv.Time.Sub(send.Time))
		fmt.Printf("  %-38s %-10s %-10v\n", "recv -> FIB install (r3)", "<4ms", r3fib.Time.Sub(r3recv.Time))
		roots := g.RootCauses(r3fib.ID)
		for _, r := range roots {
			fmt.Println("  root cause from parsed logs:", r)
		}
	})
}

// ---------------------------------------------------------------------------
// E6 — §2: blocking hazard vs root-cause repair.
// ---------------------------------------------------------------------------

func BenchmarkBlockingHazard(b *testing.B) {
	rules := func(x []capture.IO) *hbg.Graph { return hbr.Rules{}.Infer(capture.StripOracle(x)) }
	type row struct {
		strategy            string
		violBefore          int
		blackholesAfterFail int
	}
	runStrategy := func(block bool) row {
		pn := mustPaper(b, 1, network.DefaultPaperOpts())
		gate := repair.NewGate(pn.Network)
		runNet(b, pn)
		if block {
			gate.SetBlock(func(router string, u fib.Update) bool {
				return u.Entry.Prefix == pn.P && pn.Internal(router)
			})
		}
		misconfigR2(b, pn, 10)
		w := dataplane.NewWalker(pn.Topo, gate.View())
		policy := []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
		before := verify.NewChecker(w, internalSources).Check(policy)
		if !block {
			eng := repair.NewEngine(pn.Network, rules, internalSources)
			if _, err := eng.DetectAndRepair(policy); err != nil {
				b.Fatal(err)
			}
			if err := pn.Run(); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := pn.SetLinkUp("r2", "e2", false); err != nil {
			b.Fatal(err)
		}
		if err := pn.Run(); err != nil {
			b.Fatal(err)
		}
		bad := repair.BlackholedPrefixes(w, internalSources, []netip.Prefix{pn.P})
		name := "root-cause repair"
		if block {
			name = "block FIB updates"
		}
		return row{strategy: name, violBefore: len(before.Violations), blackholesAfterFail: len(bad)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStrategy(true)
		runStrategy(false)
	}
	b.StopTimer()
	blocked := runStrategy(true)
	repaired := runStrategy(false)
	once("hazard", func() {
		fmt.Println("\n[E6/§2] blocking hazard: data-plane state after R2's uplink later fails")
		fmt.Printf("  %-20s %-26s %-24s\n", "strategy", "violations while mitigated", "blackholed prefixes after failure")
		fmt.Printf("  %-20s %-26d %-24d\n", blocked.strategy, blocked.violBefore, blocked.blackholesAfterFail)
		fmt.Printf("  %-20s %-26d %-24d\n", repaired.strategy, repaired.violBefore, repaired.blackholesAfterFail)
	})
}

// ---------------------------------------------------------------------------
// E7 — §6: forwarding equivalence classes vs prefix count.
// ---------------------------------------------------------------------------

func BenchmarkEquivalenceClasses(b *testing.B) {
	routers := []string{"r1", "r2", "r3", "r4", "r5"}
	sizes := []int{1000, 10000, 100000}
	groups := 12
	var rows []string
	for _, n := range sizes {
		fibs, prefixes := eqclass.SyntheticFIBs(routers, n, groups)
		start := time.Now()
		classes := eqclass.Compute(fibs, prefixes)
		rows = append(rows, fmt.Sprintf("  %-10d %-9d %-12v", n, len(classes), time.Since(start).Round(time.Millisecond)))
	}
	fibs, prefixes := eqclass.SyntheticFIBs(routers, 10000, groups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eqclass.Compute(fibs, prefixes)
	}
	b.StopTimer()
	once("eqclass", func() {
		fmt.Println("\n[E7/§6] forwarding equivalence classes (paper cites <15 classes at 100K prefixes)")
		fmt.Printf("  %-10s %-9s %-12s\n", "prefixes", "classes", "compute")
		for _, r := range rows {
			fmt.Println(r)
		}
	})
}

// ---------------------------------------------------------------------------
// E8 — §4.2: HBR inference strategies, precision/recall under clock skew.
// ---------------------------------------------------------------------------

func BenchmarkHBRInference(b *testing.B) {
	// Reference (policy-compliant) log for pattern training.
	refNet := mustPaper(b, 7, network.DefaultPaperOpts())
	runNet(b, refNet)
	ref := capture.StripOracle(refNet.Log.All())

	scenario := func(skew, jitter time.Duration) []capture.IO {
		opt := network.DefaultPaperOpts()
		opt.ClockSkew, opt.ClockJitter = skew, jitter
		pn := mustPaper(b, 1, opt)
		runNet(b, pn)
		misconfigR2(b, pn, 10)
		return pn.Log.All()
	}
	clean := scenario(0, 0)
	skewed := scenario(3*time.Millisecond, 2*time.Millisecond)

	strategies := hbr.Strategies(ref, 0)
	var rows []string
	for _, s := range strategies {
		mc := hbr.Evaluate(s.Infer(capture.StripOracle(clean)), clean)
		ms := hbr.Evaluate(s.Infer(capture.StripOracle(skewed)), skewed)
		rows = append(rows, fmt.Sprintf("  %-11s %6.2f %6.2f   %6.2f %6.2f",
			s.Name(), mc.Precision, mc.Recall, ms.Precision, ms.Recall))
	}
	stripped := capture.StripOracle(clean)
	rules := hbr.Rules{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules.Infer(stripped)
	}
	b.StopTimer()
	once("hbrinf", func() {
		fmt.Println("\n[E8/§4.2] HBR inference accuracy (clean clocks | 3ms skew + 2ms jitter)")
		fmt.Printf("  %-11s %6s %6s   %6s %6s\n", "strategy", "prec", "rec", "prec", "rec")
		for _, r := range rows {
			fmt.Println(r)
		}
	})
}

// ---------------------------------------------------------------------------
// E9 — §5: centralized vs distributed verification.
// ---------------------------------------------------------------------------

func BenchmarkDistributedVerification(b *testing.B) {
	grids := []int{3, 5, 7}
	var rows []string
	for _, g := range grids {
		n, err := network.BuildGridOSPF(1, g, g)
		if err != nil {
			b.Fatal(err)
		}
		n.Start()
		if err := n.Run(); err != nil {
			b.Fatal(err)
		}
		corner := route.MustPrefix(fmt.Sprintf("9.%d.%d.1/32", g-1, g-1))
		policies := []verify.Policy{{Kind: verify.Reachable, Prefix: corner}}
		var sources []string
		tables := map[string]*fib.Table{}
		for _, r := range n.Routers() {
			sources = append(sources, r.Name)
			tables[r.Name] = r.FIB
		}
		// Centralized: walk locally over the assembled FIBs.
		startC := time.Now()
		w := dataplane.NewWalker(n.Topo, dataplane.TableView(tables))
		repC := verify.NewChecker(w, sources).Check(policies)
		centralTime := time.Since(startC)
		views := map[string]dist.LocalView{}
		for _, r := range n.Routers() {
			views[r.Name] = dist.LocalViewOf(r)
		}
		centralBytes, err := dist.CentralizedBytes(views)
		if err != nil {
			b.Fatal(err)
		}
		// Distributed: TCP fleet.
		coord, nodes, teardown, err := dist.BuildFleet(n, nil)
		if err != nil {
			b.Fatal(err)
		}
		startD := time.Now()
		stats, err := coord.Verify(nodes, policies, sources)
		distTime := time.Since(startD)
		teardown()
		if err != nil {
			b.Fatal(err)
		}
		if !repC.OK() || !stats.Report.OK() {
			b.Fatalf("grid %d: unexpected violations", g)
		}
		rows = append(rows, fmt.Sprintf("  %2dx%-2d %8v %10d %10v %9d %9d",
			g, g, centralTime.Round(time.Microsecond), centralBytes,
			distTime.Round(time.Microsecond), stats.Messages, stats.Bytes))
	}
	// Timed loop: distributed verification on the paper network.
	pn := mustPaper(b, 1, network.DefaultPaperOpts())
	runNet(b, pn)
	coord, nodes, teardown, err := dist.BuildFleet(pn.Network, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer teardown()
	policies := []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coord.Verify(nodes, policies, internalSources); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("dist", func() {
		fmt.Println("\n[E9/§5] centralized vs distributed verification (OSPF grids)")
		fmt.Printf("  %-5s %8s %10s %10s %9s %9s\n", "grid", "c.time", "c.bytes", "d.time", "d.msgs", "d.bytes")
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Println("  (distributed trades wall time for never shipping FIBs off-router)")
	})
}

// BenchmarkDistThroughput measures the PR 4 tentpole: the same
// verification round through the legacy transport (one TCP dial + one JSON
// envelope per message) and the pooled transport (persistent connections,
// batched binary frames). A 5x5 OSPF grid, one reachability policy from
// all 25 routers, no caching on either side — the comparison isolates the
// transport. Persisted to BENCH_dist.json with the acceptance floors
// (>=5x walks/sec, >=3x fewer bytes/walk) asserted here.
func BenchmarkDistThroughput(b *testing.B) {
	const g = 5
	n, err := network.BuildGridOSPF(1, g, g)
	if err != nil {
		b.Fatal(err)
	}
	n.Start()
	if err := n.Run(); err != nil {
		b.Fatal(err)
	}
	corner := route.MustPrefix(fmt.Sprintf("9.%d.%d.1/32", g-1, g-1))
	policies := []verify.Policy{{Kind: verify.Reachable, Prefix: corner}}
	var sources []string
	for _, r := range n.Routers() {
		sources = append(sources, r.Name)
	}

	run := func(b *testing.B, opts dist.TransportOptions) (walksPerSec, bytesPerWalk float64) {
		coord, nodes, teardown, err := dist.BuildFleet(n, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer teardown()
		// Warm up once (first round pays dial costs on the pooled path).
		if _, err := coord.Verify(nodes, policies, sources); err != nil {
			b.Fatal(err)
		}
		var walks, bytes int
		start := time.Now()
		for i := 0; i < b.N; i++ {
			stats, err := coord.Verify(nodes, policies, sources)
			if err != nil {
				b.Fatal(err)
			}
			if !stats.Report.OK() {
				b.Fatal("unexpected violations")
			}
			walks += stats.Walks
			bytes += stats.Bytes
		}
		elapsed := time.Since(start)
		return float64(walks) / elapsed.Seconds(), float64(bytes) / float64(walks)
	}

	var legacyWPS, legacyBPW, pooledWPS, pooledBPW float64
	b.Run("legacy", func(b *testing.B) {
		legacyWPS, legacyBPW = run(b, dist.TransportOptions{Legacy: true})
	})
	b.Run("pooled", func(b *testing.B) {
		pooledWPS, pooledBPW = run(b, dist.TransportOptions{})
	})
	if legacyWPS == 0 || pooledWPS == 0 {
		return // sub-benchmarks filtered out
	}
	speedup := pooledWPS / legacyWPS
	byteCut := legacyBPW / pooledBPW
	once("distthroughput", func() {
		fmt.Println("\n[tentpole/PR4] distributed verification transport, 5x5 OSPF grid, 25 walks/round")
		fmt.Printf("  legacy (dial-per-msg, JSON):    %10.0f walks/sec  %7.0f bytes/walk\n", legacyWPS, legacyBPW)
		fmt.Printf("  pooled (persistent, binary):    %10.0f walks/sec  %7.0f bytes/walk\n", pooledWPS, pooledBPW)
		fmt.Printf("  throughput %.1fx, wire bytes per walk cut %.1fx\n", speedup, byteCut)
		artifact, _ := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkDistThroughput",
			"grid":      g, "walks_per_round": len(sources),
			"legacy_walks_per_sec": legacyWPS, "legacy_bytes_per_walk": legacyBPW,
			"pooled_walks_per_sec": pooledWPS, "pooled_bytes_per_walk": pooledBPW,
			"throughput_speedup": speedup, "bytes_per_walk_reduction": byteCut,
		}, "", "  ")
		if err := os.WriteFile("BENCH_dist.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_dist.json:", err, ")")
		}
	})
	if speedup < 5 {
		b.Errorf("pooled transport throughput %.1fx legacy, want >= 5x (%.0f vs %.0f walks/sec)",
			speedup, pooledWPS, legacyWPS)
	}
	if byteCut < 3 {
		b.Errorf("pooled transport ships %.1fx fewer bytes/walk, want >= 3x (%.0f vs %.0f)",
			byteCut, pooledBPW, legacyBPW)
	}
}

// ---------------------------------------------------------------------------
// E10 — §8: BGP determinism with and without Add-Path.
// ---------------------------------------------------------------------------

func BenchmarkAddPathDeterminism(b *testing.B) {
	outcomes := func(addPath bool, quirks route.Quirks, seeds int) map[string]int {
		got := map[string]int{}
		for seed := int64(1); seed <= int64(seeds); seed++ {
			opt := network.DefaultPaperOpts()
			opt.LPR1, opt.LPR2 = 20, 20 // tie: the tie-break decides
			opt.AddPath = addPath
			opt.Quirks = map[string]route.Quirks{"r1": quirks, "r2": quirks, "r3": quirks}
			pn := mustPaper(b, seed, opt)
			pn.BGPSessionJitter = 6 * time.Millisecond // message-order randomness
			runNet(b, pn)
			e, _ := pn.Router("r3").FIB.Exact(pn.P)
			got[e.NextHop.String()]++
		}
		return got
	}
	const seeds = 24
	quirky := outcomes(false, route.VendorB, seeds)  // prefer-oldest, best-only iBGP
	quirkyAP := outcomes(true, route.VendorB, seeds) // prefer-oldest + Add-Path
	canonical := outcomes(false, route.Quirks{}, seeds)
	canonicalAP := outcomes(true, route.Quirks{}, seeds)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := network.DefaultPaperOpts()
		opt.AddPath = true
		pn := mustPaper(b, 1, opt)
		runNet(b, pn)
	}
	b.StopTimer()
	once("addpath", func() {
		fmt.Println("\n[E10/§8] distinct r3 outcomes over", seeds, "message-order seeds (egress tie)")
		fmt.Printf("  %-34s %s\n", "configuration", "distinct outcomes")
		fmt.Printf("  %-34s %d %v\n", "prefer-oldest quirk, best-only", len(quirky), quirky)
		fmt.Printf("  %-34s %d %v\n", "prefer-oldest quirk, Add-Path", len(quirkyAP), quirkyAP)
		fmt.Printf("  %-34s %d %v\n", "canonical tie-break, best-only", len(canonical), canonical)
		fmt.Printf("  %-34s %d %v\n", "canonical tie-break, Add-Path", len(canonicalAP), canonicalAP)
		fmt.Println("  (determinism needs Add-Path visibility AND order-free tie-breaking)")
	})
}

// ---------------------------------------------------------------------------
// E11 — §1/§2: the model verifier's coverage gap under vendor quirks.
// ---------------------------------------------------------------------------

func BenchmarkModelCoverageGap(b *testing.B) {
	run := func(quirks route.Quirks, medE1, medE2 uint32) (mismatches int) {
		opt := network.DefaultPaperOpts()
		opt.LPR1, opt.LPR2 = 20, 20 // tie: MED handling decides
		opt.Quirks = map[string]route.Quirks{"r1": quirks, "r2": quirks, "r3": quirks}
		pn := mustPaper(b, 1, opt)
		// Providers attach MEDs via export policy (both the config and the
		// already-built session need the policy name).
		for name, med := range map[string]uint32{"e1": medE1, "e2": medE2} {
			r := pn.Router(name)
			r.Cfg.Policies = map[string]*config.Policy{
				"med": {Name: "med", Terms: []config.PolicyTerm{
					{Match: config.MatchAny, Action: config.ActionSetMED, Value: med},
				}},
			}
			r.Cfg.BGP.Neighbors[0].ExportPolicy = "med"
			r.BGP.Session(r.Cfg.BGP.Neighbors[0].Addr).ExportPolicy = "med"
		}
		runNet(b, pn)
		internal := func(n string) bool { return pn.Internal(n) }
		pred := modelck.Predict(pn.Network, internal, []netip.Prefix{pn.P})
		return len(modelck.Diff(pn.Network, pred))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(route.VendorA, 50, 5)
	}
	b.StopTimer()
	canonical := run(route.Quirks{}, 50, 5)
	vendorA := run(route.VendorA, 50, 5)
	once("modelgap", func() {
		fmt.Println("\n[E11/§2] canonical-model verifier vs actual control plane (MED tie scenario)")
		fmt.Printf("  %-34s %s\n", "router behaviour", "model mispredictions (of 3 routers)")
		fmt.Printf("  %-34s %d\n", "canonical (matches model)", canonical)
		fmt.Printf("  %-34s %d\n", "vendor quirk: always-compare-MED", vendorA)
		fmt.Println("  (the quirky network picks e2's low-MED route; the model predicts e1)")
	})
}

// ---------------------------------------------------------------------------
// E12 — §6: predicting control-plane outcomes from equivalence classes.
// ---------------------------------------------------------------------------

func BenchmarkEarlyPrediction(b *testing.B) {
	// Providers originate many prefixes in two policy groups: e1-only
	// (exits via r1) and e2-only (exits via r2). Train the predictor on
	// most prefixes, predict the held-out rest.
	const perGroup = 20
	opt := network.DefaultPaperOpts()
	opt.AdvertiseE1, opt.AdvertiseE2 = false, false
	pn := mustPaper(b, 1, opt)
	var groupE1, groupE2 []netip.Prefix
	for i := 0; i < perGroup; i++ {
		groupE1 = append(groupE1, route.MustPrefix(fmt.Sprintf("11.%d.0.0/24", i)))
		groupE2 = append(groupE2, route.MustPrefix(fmt.Sprintf("22.%d.0.0/24", i)))
	}
	pn.Router("e1").Cfg.BGP.Networks = groupE1
	pn.Router("e2").Cfg.BGP.Networks = groupE2
	runNet(b, pn)

	fibs := pn.FIBSnapshot()
	classes := eqclass.Compute(fibs, append(append([]netip.Prefix(nil), groupE1...), groupE2...))

	// The trigger input for each prefix: the border's receive event.
	trigger := map[netip.Prefix]capture.IO{}
	for _, io := range pn.Log.All() {
		if io.Type == capture.RecvAdvert && (io.Router == "r1" || io.Router == "r2") &&
			(io.Peer == "e1" || io.Peer == "e2") {
			if _, have := trigger[io.Prefix]; !have {
				trigger[io.Prefix] = io
			}
		}
	}
	all := append(append([]netip.Prefix(nil), groupE1...), groupE2...)
	train, test := all[:len(all)-8], all[len(all)-8:]
	pred := repair.NewOutcomePredictor()
	for _, p := range train {
		if in, ok := trigger[p]; ok {
			pred.Learn(in, eqclass.Signature(fibs, p))
		}
	}
	correct, predicted := 0, 0
	for _, p := range test {
		in, ok := trigger[p]
		if !ok {
			continue
		}
		sig, ok := pred.Predict(in)
		if !ok {
			continue
		}
		predicted++
		if sig == eqclass.Signature(fibs, p) {
			correct++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range test {
			if in, ok := trigger[p]; ok {
				pred.Predict(in)
			}
		}
	}
	b.StopTimer()
	once("predict", func() {
		fmt.Println("\n[E12/§6] outcome prediction from control-plane repetitiveness")
		fmt.Printf("  prefixes=%d classes=%d learned-signatures=%d\n", len(all), len(classes), pred.Len())
		fmt.Printf("  held-out predictions: %d/%d made, %d/%d correct\n", predicted, len(test), correct, predicted)
	})
}

// ---------------------------------------------------------------------------
// E13 (extension) — §8: pre-install verification keeps the data plane
// clean through the Fig. 2 misconfiguration.
// ---------------------------------------------------------------------------

func BenchmarkPreInstallGate(b *testing.B) {
	runOnce := func() (withheld int, dpViolations int) {
		pn := mustPaper(b, 1, network.DefaultPaperOpts())
		gate := repair.NewGate(pn.Network)
		policies := []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
		pi := repair.NewPreInstall(pn.Network, gate, policies, internalSources)
		runNet(b, pn)
		misconfigR2(b, pn, 10)
		w := dataplane.NewWalker(pn.Topo, gate.View())
		rep := verify.NewChecker(w, internalSources).Check(policies)
		return len(pi.WithheldUpdates()), len(rep.Violations)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce()
	}
	b.StopTimer()
	withheld, dpViol := runOnce()
	// Contrast: without the gate the data plane violates.
	pn := mustPaper(b, 2, network.DefaultPaperOpts())
	runNet(b, pn)
	misconfigR2(b, pn, 10)
	pipe := NewPipeline(pn.Network, internalSources)
	ungated := pipe.Verify([]verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}})
	once("preinstall", func() {
		fmt.Println("\n[E13/§8] verify-before-install: Fig. 2 misconfiguration")
		fmt.Printf("  %-28s %-22s %-18s\n", "mode", "data-plane violations", "updates withheld")
		fmt.Printf("  %-28s %-22d %-18s\n", "install-then-verify", len(ungated.Violations), "-")
		fmt.Printf("  %-28s %-22d %-18d\n", "verify-before-install (§8)", dpViol, withheld)
	})
}

// ---------------------------------------------------------------------------
// E14 (extension) — §8: what-if analysis on an emulated copy.
// ---------------------------------------------------------------------------

func BenchmarkWhatIf(b *testing.B) {
	pn := mustPaper(b, 1, network.DefaultPaperOpts())
	runNet(b, pn)
	bp := pn.Blueprint()
	eng := &whatif.Engine{Seed: 99, Sources: internalSources, Policies: []verify.Policy{
		{Kind: verify.Reachable, Prefix: pn.P},
		{Kind: verify.NoLoop, Prefix: pn.P},
	}}
	var failRes, doubleRes whatif.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		failRes, err = eng.Ask(bp, whatif.LinkFailure("r2", "e2"))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	doubleRes, err = eng.Ask(bp, whatif.LinkFailure("r2", "e2"), whatif.LinkFailure("r1", "e1"))
	if err != nil {
		b.Fatal(err)
	}
	egressEng := &whatif.Engine{Seed: 99, Sources: internalSources, Policies: []verify.Policy{
		{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"},
	}}
	cfgRes, err := egressEng.Ask(bp, whatif.ConfigUpdate("r2", "lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}))
	if err != nil {
		b.Fatal(err)
	}
	once("whatif", func() {
		fmt.Println("\n[E14/§8] what-if on an emulated copy (live network untouched)")
		fmt.Printf("  %-32s %-10s %s\n", "hypothetical", "verdict", "report")
		fmt.Printf("  %-32s %-10v %s\n", "r2-e2 uplink fails", failRes.OK(), failRes.Report.Summary())
		fmt.Printf("  %-32s %-10v %s\n", "both uplinks fail", doubleRes.OK(), doubleRes.Report.Summary())
		fmt.Printf("  %-32s %-10v %s\n", "commit LP-10 on r2", cfgRes.OK(), cfgRes.Report.Summary())
	})
}

// BenchmarkIncrementalReVerify measures the tentpole optimization of the
// incremental HBG inference: on a Fig. 5-scale log grown by one more
// convergence round (a few percent of the I/Os), re-inferring through
// hbr.Incremental touches only the new suffix plus the bounded look-back
// window, versus re-matching the whole log from scratch.
func BenchmarkIncrementalReVerify(b *testing.B) {
	pn := mustPaper(b, 1, network.DefaultPaperOpts())
	runNet(b, pn)
	lp := uint32(10)
	churn := func() {
		if _, err := pn.UpdateConfig("r2", "toggle uplink local-pref", func(c *config.Router) {
			c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = lp
		}); err != nil {
			b.Fatal(err)
		}
		lp = 310 - lp
		if err := pn.Run(); err != nil {
			b.Fatal(err)
		}
		// Idle virtual time between rounds so the total span dwarfs the
		// 60 s config look-back window, as in a real deployment. The clock
		// only advances through events, so schedule a no-op marker.
		pn.Sched.After(90*time.Second, func() {})
		if err := pn.Run(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		churn()
	}
	base := capture.StripOracle(pn.Log.All())
	churn()
	grown := capture.StripOracle(pn.Log.All())
	tail := len(grown) - len(base)

	rules := hbr.Rules{}
	// Cost of the from-scratch alternative.
	const fullRuns = 5
	fullStart := time.Now()
	for i := 0; i < fullRuns; i++ {
		rules.Infer(grown)
	}
	fullPer := time.Since(fullStart) / fullRuns

	var incTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inc := hbr.NewIncremental(rules, nil)
		inc.Infer(base) // prime the cache on the pre-growth log
		b.StartTimer()
		t0 := time.Now()
		inc.Infer(grown)
		incTotal += time.Since(t0)
	}
	b.StopTimer()
	incPer := incTotal / time.Duration(b.N)
	speedup := float64(fullPer) / float64(incPer)
	once("increverify", func() {
		fmt.Println("\n[tentpole] incremental re-inference after log growth")
		fmt.Printf("  log: %d I/Os, tail %d I/Os (%.1f%%)\n",
			len(grown), tail, 100*float64(tail)/float64(len(grown)))
		fmt.Printf("  full re-inference:        %v\n", fullPer)
		fmt.Printf("  incremental re-inference: %v (%.1fx speedup)\n", incPer, speedup)
	})
	if speedup < 10 {
		b.Errorf("incremental speedup %.1fx, want >= 10x (full %v vs incremental %v)", speedup, fullPer, incPer)
	}
}

// BenchmarkDeltaVerify measures the PR 3 tentpole: one verification tick
// after a single-prefix FIB change at 100K prefixes. The full path
// recomputes every equivalence class and re-walks every (source, class)
// pair; the delta path re-signs only the churned prefix through
// eqclass.Incremental and re-executes only the walks the touched router
// invalidated. Run as sub-benchmarks for ns/op and allocs/op, plus a
// hand-measured comparison persisted to BENCH_delta.json.
func BenchmarkDeltaVerify(b *testing.B) {
	routers := []string{"r1", "r2", "r3", "r4", "r5"}
	const nPrefixes, nGroups = 100_000, 12
	fibs, prefixes := eqclass.SyntheticFIBs(routers, nPrefixes, nGroups)

	// A minimal topology so the checker walks real (if short) paths; the
	// synthetic next hops resolve nowhere, which keeps walk cost flat and
	// the classification cost dominant — the regime §6 describes.
	topo := topology.New()
	for i, r := range routers {
		if _, err := topo.AddRouter(r, netip.AddrFrom4([4]byte{1, 1, 1, byte(i + 1)})); err != nil {
			b.Fatal(err)
		}
	}
	tries := map[string]*trie.Trie[fib.Entry]{}
	for r, table := range fibs {
		tr := trie.New[fib.Entry]()
		for p, e := range table {
			tr.Insert(p, e)
		}
		tries[r] = tr
	}
	view := func(router string, dst netip.Addr) (fib.Entry, bool) {
		t := tries[router]
		if t == nil {
			return fib.Entry{}, false
		}
		e, _, ok := t.Lookup(dst)
		return e, ok
	}
	walker := dataplane.NewWalker(topo, view)

	// One reachability policy per class representative, checked from every
	// router — the per-class verification §6 makes tractable.
	var policies []verify.Policy
	for _, rep := range eqclass.Representatives(eqclass.Compute(fibs, prefixes)) {
		policies = append(policies, verify.Policy{Kind: verify.Reachable, Prefix: rep})
	}

	inc := eqclass.NewIncremental(nil)
	for r, table := range fibs {
		inc.Seed(r, table)
	}
	inc.Update() // absorb the seed re-sign outside the timed region
	cache := verify.NewWalkCache()
	cached := verify.NewChecker(walker, routers)
	cached.Workers = 1
	cached.Cache = cache
	cold := verify.NewChecker(walker, routers)
	cold.Workers = 1

	// flip alternates one /24's next hop at r1, updating the ground-truth
	// maps, the walker's tries, and the delta classifier's feed.
	churn := prefixes[0]
	hops := [2]netip.Addr{netip.MustParseAddr("203.0.113.77"), netip.MustParseAddr("203.0.113.78")}
	flip := func(i int) {
		e := fib.Entry{Prefix: churn, NextHop: hops[i%2]}
		fibs["r1"][churn] = e
		tries["r1"].Insert(churn, e)
		inc.Note("r1", fib.Update{Entry: e, Install: true})
	}
	fullTick := func() {
		eqclass.Compute(fibs, nil)
		cold.Check(policies)
	}
	deltaTick := func() {
		inc.Update()
		cache.InvalidateRouter("r1")
		cached.Check(policies)
	}

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flip(i)
			fullTick()
		}
	})
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flip(i)
			deltaTick()
		}
	})

	// Hand-rolled comparison (time + mallocs) for the artifact and the
	// acceptance assertion, independent of b.N calibration.
	measure := func(tick func(), n int) (nsPerOp, allocsPerOp float64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			flip(i)
			tick()
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		return float64(elapsed.Nanoseconds()) / float64(n),
			float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	deltaNs, deltaAllocs := measure(deltaTick, 200)
	fullNs, fullAllocs := measure(fullTick, 3)
	speedup := fullNs / deltaNs
	allocCut := fullAllocs / deltaAllocs
	once("deltaverify", func() {
		fmt.Println("\n[tentpole/PR3] single-prefix churn tick at 100K prefixes, 12 groups, 5 routers")
		fmt.Printf("  full  (Compute + cold Check):   %11.0f ns/op  %9.0f allocs/op\n", fullNs, fullAllocs)
		fmt.Printf("  delta (Update + cached Check):  %11.0f ns/op  %9.0f allocs/op\n", deltaNs, deltaAllocs)
		fmt.Printf("  speedup %.0fx, allocation reduction %.0fx\n", speedup, allocCut)
		artifact, _ := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkDeltaVerify",
			"prefixes":  nPrefixes, "groups": nGroups, "routers": len(routers),
			"full_ns_per_op": fullNs, "full_allocs_per_op": fullAllocs,
			"delta_ns_per_op": deltaNs, "delta_allocs_per_op": deltaAllocs,
			"speedup": speedup, "alloc_reduction": allocCut,
		}, "", "  ")
		if err := os.WriteFile("BENCH_delta.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_delta.json:", err, ")")
		}
	})
	if speedup < 10 {
		b.Errorf("delta speedup %.0fx, want >= 10x (full %.0fns vs delta %.0fns)", speedup, fullNs, deltaNs)
	}
	if allocCut < 10 {
		b.Errorf("delta allocation reduction %.0fx, want >= 10x (full %.0f vs delta %.0f allocs)", allocCut, fullAllocs, deltaAllocs)
	}
}

// BenchmarkSymbolicWalk measures the PR 7 tentpole: verifying one
// forwarding equivalence class with a single symbolic DAG walk instead of
// one concrete probe per ECMP path combination. The topology is a
// three-stage Clos slice (12 routers, 4 per stage, full bipartite between
// stages, LAG width 4) carrying 100K prefixes in 12 classes; the baseline
// enumerates every concrete path (8–16 per class here) and aggregates,
// the symbolic walker explores the shared DAG once. Persisted to
// BENCH_ecmp.json; the acceptance floor requires >= 2x fewer walks per
// class than the probe baseline, with the shared exploration no slower.
func BenchmarkSymbolicWalk(b *testing.B) {
	const nPrefixes, nGroups, stageWidth, lagWidth = 100_000, 12, 4, 4

	topo := topology.New()
	stage := func(s, i int) string { return fmt.Sprintf("t%d-%d", s, i) }
	for s := 0; s < 3; s++ {
		for i := 0; i < stageWidth; i++ {
			if _, err := topo.AddRouter(stage(s, i), netip.AddrFrom4([4]byte{2, 0, byte(s), byte(i + 1)})); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Full bipartite links between consecutive stages; downAddr[s][i] holds
	// the peer addresses router t<s>-<i> forwards to (its stage-s+1 side).
	downAddr := [2][stageWidth][]netip.Addr{}
	for s := 0; s < 2; s++ {
		for i := 0; i < stageWidth; i++ {
			for j := 0; j < stageWidth; j++ {
				sub := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(20 + s), byte(i*stageWidth + j), 0}), 30)
				up := netip.AddrFrom4([4]byte{10, byte(20 + s), byte(i*stageWidth + j), 1})
				down := netip.AddrFrom4([4]byte{10, byte(20 + s), byte(i*stageWidth + j), 2})
				if _, err := topo.AddLink(topology.LinkSpec{
					ARouter: stage(s, i), AIface: "dn" + stage(s+1, j), AAddr: up,
					BRouter: stage(s+1, j), BIface: "up" + stage(s, i), BAddr: down,
					Prefix: sub,
				}); err != nil {
					b.Fatal(err)
				}
				downAddr[s][i] = append(downAddr[s][i], down)
			}
		}
	}
	// Every egress router owns the whole destination space as a stub LAN,
	// so the last stage delivers and the class structure lives entirely in
	// the middle stage's next-hop sets.
	dstSpace := netip.MustParsePrefix("100.0.0.0/6")
	for k := 0; k < stageWidth; k++ {
		if _, err := topo.AddStub(stage(2, k), "lan",
			netip.AddrFrom4([4]byte{100, 0, 0, byte(k + 1)}), dstSpace); err != nil {
			b.Fatal(err)
		}
	}

	// FIBs: ingress routers spray every prefix over the full LAG (width 4);
	// middle routers use a group-specific subset of their egress links,
	// which is what splits the 100K prefixes into 12 classes. The subsets
	// are distinct bitmasks (contiguous rotations alone would collapse: all
	// four width-4 rotations are the same set).
	masks := [nGroups]uint{
		0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100,
		0b0111, 0b1011, 0b1101, 0b1110, 0b1111, 0b0001,
	}
	fibs := map[string]map[netip.Prefix]fib.Entry{}
	tries := map[string]*trie.Trie[fib.Entry]{}
	for s := 0; s < 2; s++ {
		for i := 0; i < stageWidth; i++ {
			fibs[stage(s, i)] = map[netip.Prefix]fib.Entry{}
			tries[stage(s, i)] = trie.New[fib.Entry]()
		}
	}
	prefixes := make([]netip.Prefix, 0, nPrefixes)
	for i := 0; i < nPrefixes; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(100 + i>>16), byte(i >> 8), byte(i), 0}), 24)
		prefixes = append(prefixes, p)
		g := i % nGroups
		for ri := 0; ri < stageWidth; ri++ {
			in := route.CanonHops(downAddr[0][ri])
			eIn := fib.Entry{Prefix: p, NextHop: in[0], NextHops: in}
			fibs[stage(0, ri)][p] = eIn
			tries[stage(0, ri)].Insert(p, eIn)

			var mid []netip.Addr
			for j := 0; j < stageWidth; j++ {
				if masks[g]&(1<<uint(j)) != 0 {
					mid = append(mid, downAddr[1][ri][j])
				}
			}
			mid = route.CanonHops(mid)
			eMid := fib.Entry{Prefix: p, NextHop: mid[0]}
			if len(mid) > 1 {
				eMid.NextHops = mid
			}
			fibs[stage(1, ri)][p] = eMid
			tries[stage(1, ri)].Insert(p, eMid)
		}
	}
	view := func(router string, dst netip.Addr) (fib.Entry, bool) {
		tr := tries[router]
		if tr == nil {
			return fib.Entry{}, false
		}
		e, _, ok := tr.Lookup(dst)
		return e, ok
	}
	walker := dataplane.NewWalker(topo, view)

	classes := eqclass.Compute(fibs, prefixes)
	if len(classes) != nGroups {
		b.Fatalf("classes = %d, want %d", len(classes), nGroups)
	}
	reps := eqclass.Representatives(classes)

	// Sanity: the symbolic walk and the aggregated probes must agree on
	// every (source, class) pair before timing anything — the same
	// equivalence the scenario oracle pins continuously.
	const probeLimit = 256
	probeCount := 0
	for _, rep := range reps {
		dst := dataplane.Representative(rep)
		for i := 0; i < stageWidth; i++ {
			w := walker.Forward(stage(0, i), dst)
			probes := walker.ConcretePaths(stage(0, i), dst, probeLimit)
			probeCount += len(probes)
			walks := make([]dataplane.Walk, len(probes))
			for j, pw := range probes {
				walks[j] = pw.Walk
			}
			agg, _ := dataplane.AggregateProbes(walks)
			if agg != w.Outcome {
				b.Fatalf("%s->%v: symbolic %s vs probe aggregate %s", stage(0, i), dst, w.Outcome, agg)
			}
		}
	}

	symTick := func() {
		for _, rep := range reps {
			dst := dataplane.Representative(rep)
			for i := 0; i < stageWidth; i++ {
				_ = walker.Forward(stage(0, i), dst)
			}
		}
	}
	probeTick := func() {
		for _, rep := range reps {
			dst := dataplane.Representative(rep)
			for i := 0; i < stageWidth; i++ {
				probes := walker.ConcretePaths(stage(0, i), dst, probeLimit)
				walks := make([]dataplane.Walk, len(probes))
				for j, pw := range probes {
					walks[j] = pw.Walk
				}
				_, _ = dataplane.AggregateProbes(walks)
			}
		}
	}

	b.Run("symbolic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			symTick()
		}
	})
	b.Run("probes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			probeTick()
		}
	})

	measure := func(tick func(), n int) float64 {
		runtime.GC()
		t0 := time.Now()
		for i := 0; i < n; i++ {
			tick()
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(n)
	}
	symNs := measure(symTick, 50)
	probeNs := measure(probeTick, 50)
	speedup := probeNs / symNs
	pairs := len(reps) * stageWidth
	walksPerClass := float64(probeCount) / float64(pairs)
	once("symbolicwalk", func() {
		fmt.Println("\n[tentpole/PR7] per-class symbolic walk vs concrete probe enumeration")
		fmt.Printf("  12 routers (3-stage Clos, LAG width %d), %d prefixes, %d classes, %d (src,class) pairs\n",
			lagWidth, nPrefixes, len(classes), pairs)
		fmt.Printf("  probes:   %11.0f ns/tick  (%.1f concrete walks per class)\n", probeNs, walksPerClass)
		fmt.Printf("  symbolic: %11.0f ns/tick  (1 DAG walk per class)\n", symNs)
		fmt.Printf("  speedup %.1fx\n", speedup)
		artifact, _ := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkSymbolicWalk",
			"prefixes":  nPrefixes, "routers": 3 * stageWidth, "lag_width": lagWidth,
			"classes": len(classes), "pairs": pairs,
			"probe_walks_per_class": walksPerClass, "symbolic_walks_per_class": 1,
			"probe_ns_per_tick": probeNs, "symbolic_ns_per_tick": symNs,
			"speedup": speedup,
		}, "", "  ")
		if err := os.WriteFile("BENCH_ecmp.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_ecmp.json:", err, ")")
		}
	})
	// Acceptance floor: the symbolic walker must cover each class in >= 2x
	// fewer walks than the per-probe baseline (it uses exactly 1), and the
	// walk sharing must not cost wall-clock time.
	if walksPerClass < 2 {
		b.Errorf("probe baseline enumerates %.1f walks/class vs 1 symbolic, want >= 2x fewer", walksPerClass)
	}
	if speedup < 1 {
		b.Errorf("symbolic tick slower than probe enumeration: %.0fns vs %.0fns", symNs, probeNs)
	}
}

// ---------------------------------------------------------------------------
// Tentpole PR5 — high-throughput HBR inference and zero-alloc ingestion.
// ---------------------------------------------------------------------------

// benchInferLog generates a deterministic synthetic capture log shaped
// like real churn: BGP/RIP/EIGRP update chains with RIB/FIB installs,
// prefix-less OSPF floods matched by Detail (with occasional duplicate
// sends so tie-breaking is exercised), link flaps, config edits, and soft
// reconfigs, spread over nRouters skewed clocks. Every event emits a
// parseable Cisco-style line, so the same log feeds both the inference
// and the ingestion measurements.
func benchInferLog(seed int64, n, nRouters int) []capture.IO {
	rng := rand.New(rand.NewSource(seed))
	routers := make([]string, nRouters)
	skew := make([]time.Duration, nRouters)
	for i := range routers {
		routers[i] = fmt.Sprintf("r%d", i)
		skew[i] = time.Duration(rng.Intn(401)-200) * time.Millisecond
	}
	prefixes := make([]netip.Prefix, 64)
	for i := range prefixes {
		prefixes[i] = netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/8, i%8*4))
	}
	protos := []route.Protocol{route.ProtoBGP, route.ProtoOSPF, route.ProtoRIP, route.ProtoEIGRP}

	out := make([]capture.IO, 0, n+8)
	id := uint64(1)
	base := netsim.VirtualTime(int64(time.Hour)) // keep skewed stamps positive
	add := func(r int, io capture.IO, dt time.Duration) {
		io.ID = id
		id++
		io.Router = routers[r]
		io.Time = base.Add(dt + skew[r])
		out = append(out, io)
	}
	for len(out) < n {
		base = base.Add(time.Duration(1+rng.Intn(5)) * time.Millisecond)
		a := rng.Intn(nRouters)
		peer := (a + 1) % nRouters
		switch rng.Intn(10) {
		case 0:
			add(a, capture.IO{Type: capture.ConfigChange, Detail: "policy edit"}, 0)
		case 1:
			up := capture.LinkUp
			if rng.Intn(2) == 0 {
				up = capture.LinkDown
			}
			add(a, capture.IO{Type: up, Peer: routers[peer], Detail: "eth0"}, 0)
		case 2:
			detail := fmt.Sprintf("LSA type 1 seq %d", rng.Intn(8))
			addr := netip.MustParseAddr(fmt.Sprintf("10.255.0.%d", a+1))
			add(a, capture.IO{Type: capture.SendAdvert, Proto: route.ProtoOSPF, Peer: routers[peer], PeerAddr: addr, Detail: detail}, 0)
			if rng.Intn(3) == 0 {
				add(a, capture.IO{Type: capture.SendAdvert, Proto: route.ProtoOSPF, Peer: routers[peer], PeerAddr: addr, Detail: detail},
					time.Duration(rng.Intn(20))*time.Millisecond)
			}
			add(peer, capture.IO{Type: capture.RecvAdvert, Proto: route.ProtoOSPF, Peer: routers[a], PeerAddr: addr, Detail: detail},
				time.Duration(rng.Intn(10))*time.Millisecond)
		default:
			proto := protos[rng.Intn(len(protos))]
			pfx := prefixes[rng.Intn(len(prefixes))]
			nh := netip.MustParseAddr(fmt.Sprintf("10.255.0.%d", a+1))
			kind, rkind := capture.SendAdvert, capture.RecvAdvert
			if rng.Intn(4) == 0 {
				kind, rkind = capture.SendWithdraw, capture.RecvWithdraw
			}
			add(a, capture.IO{Type: capture.RIBInstall, Proto: proto, Prefix: pfx, NextHop: nh}, 0)
			add(a, capture.IO{Type: capture.FIBInstall, Proto: proto, Prefix: pfx, NextHop: nh}, time.Millisecond)
			add(a, capture.IO{Type: kind, Proto: proto, Prefix: pfx, Peer: routers[peer], PeerAddr: nh}, 2*time.Millisecond)
			add(peer, capture.IO{Type: rkind, Proto: proto, Prefix: pfx, Peer: routers[a], PeerAddr: nh, NextHop: nh},
				2*time.Millisecond+time.Duration(rng.Intn(8))*time.Millisecond)
			if rng.Intn(8) == 0 {
				add(peer, capture.IO{Type: capture.SoftReconfig, Proto: route.ProtoBGP}, 3*time.Millisecond)
			}
		}
	}
	return out[:n]
}

// BenchmarkInferThroughput — tentpole PR5: the shared-index Combined
// strategy (sorted-once events, keyed send lookup, parallel per-router
// sharding) against the preserved pre-Index reference, and the byte-
// scanning interning parser against the string-splitting reference, over
// the same 30K-event synthetic log. Persisted to BENCH_infer.json with
// the acceptance floors (>=5x events/sec on Combined, >=3x fewer
// allocs/event on parse) asserted here.
func BenchmarkInferThroughput(b *testing.B) {
	const nEvents, nRouters = 60_000, 12
	ios := benchInferLog(42, nEvents, nRouters)
	train := benchInferLog(43, 4_000, nRouters)
	lineup := hbr.Strategies(train, 0)
	combined := lineup[len(lineup)-1] // Combined, per the Strategies contract
	refCombined := hbr.Reference(combined)

	// The two paths must be edge- and confidence-identical before we time
	// them (this doubles as the warm-up run for both).
	fastG, refG := combined.Infer(ios), refCombined.Infer(ios)
	if !reflect.DeepEqual(fastG.Edges(), refG.Edges()) {
		b.Fatalf("indexed Combined diverges from reference: %d vs %d edges",
			len(fastG.Edges()), len(refG.Edges()))
	}

	b.Run("combined-indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			combined.Infer(ios)
		}
	})
	b.Run("combined-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refCombined.Infer(ios)
		}
	})

	// Hand-rolled comparison for the artifact and the acceptance
	// assertions, independent of b.N calibration.
	inferNs := func(s hbr.Strategy, runs int) float64 {
		t0 := time.Now()
		for i := 0; i < runs; i++ {
			s.Infer(ios)
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(runs)
	}
	fastNs := inferNs(combined, 6)
	refNs := inferNs(refCombined, 2)
	fastEPS := float64(nEvents) * 1e9 / fastNs
	refEPS := float64(nEvents) * 1e9 / refNs
	speedup := refNs / fastNs

	// Ingestion: emit the same log once, then parse it cold with each
	// parser — a single pass, so the interning maps pay their build cost
	// inside the measured window.
	var sb strings.Builder
	if err := ciscolog.EmitLog(&sb, ios); err != nil {
		b.Fatal(err)
	}
	text := sb.String()
	parseOnce := func(parse func() (int, error)) (allocsPerEvent, nsPerEvent float64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		n, err := parse()
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&after)
		if err != nil {
			b.Fatal(err)
		}
		if n != nEvents {
			b.Fatalf("parsed %d events, want %d", n, nEvents)
		}
		return float64(after.Mallocs-before.Mallocs) / float64(n),
			float64(elapsed.Nanoseconds()) / float64(n)
	}
	fastAllocs, fastParseNs := parseOnce(func() (int, error) {
		out, err := ciscolog.NewParser(nil).ParseLog("r0", strings.NewReader(text))
		return len(out), err
	})
	refAllocs, refParseNs := parseOnce(func() (int, error) {
		out, err := ciscolog.NewReferenceParser(nil).ParseLog("r0", strings.NewReader(text))
		return len(out), err
	})
	allocCut := refAllocs / fastAllocs

	once("inferthroughput", func() {
		fmt.Printf("\n[tentpole/PR5] HBR inference + ingestion over %d events, %d routers\n", nEvents, nRouters)
		fmt.Printf("  combined reference (linear scan):  %11.0f events/sec\n", refEPS)
		fmt.Printf("  combined indexed (shared, sharded):%11.0f events/sec\n", fastEPS)
		fmt.Printf("  parse reference (string fields):   %8.1f allocs/event  %7.0f ns/event\n", refAllocs, refParseNs)
		fmt.Printf("  parse fast (byte scan, interned):  %8.1f allocs/event  %7.0f ns/event\n", fastAllocs, fastParseNs)
		fmt.Printf("  inference %.1fx, parse allocations cut %.1fx\n", speedup, allocCut)
		artifact, _ := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkInferThroughput",
			"events":    nEvents, "routers": nRouters,
			"reference_events_per_sec": refEPS, "indexed_events_per_sec": fastEPS,
			"reference_parse_allocs_per_event": refAllocs, "fast_parse_allocs_per_event": fastAllocs,
			"reference_parse_ns_per_event": refParseNs, "fast_parse_ns_per_event": fastParseNs,
			"inference_speedup": speedup, "parse_alloc_reduction": allocCut,
		}, "", "  ")
		if err := os.WriteFile("BENCH_infer.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_infer.json:", err, ")")
		}
	})
	if speedup < 5 {
		b.Errorf("indexed Combined inference %.1fx reference, want >= 5x (%.0f vs %.0f events/sec)",
			speedup, fastEPS, refEPS)
	}
	if allocCut < 3 {
		b.Errorf("fast parse allocates %.1fx less than reference, want >= 3x (%.1f vs %.1f allocs/event)",
			allocCut, fastAllocs, refAllocs)
	}
}

// ---------------------------------------------------------------------------
// Tentpole PR6 — always-on streaming ingestion with bounded memory.
// ---------------------------------------------------------------------------

// soakEvents caps the soak size: `-soak.events=50000` is the CI smoke
// setting; the default is the full million-event soak the flat-memory
// claim is made over.
var soakEvents = flag.Int("soak.events", 1_000_000, "events to ingest in BenchmarkSoakIngest")

// BenchmarkSoakIngest — tentpole PR6: stream a synthetic router fleet's
// Cisco-style logs through the always-on daemon and measure the live heap
// with windowed compaction on versus off. The flat-memory claim is
// enforced here: after the full soak, the compacting daemon's post-GC
// heap must stay within 2x its steady-state watermark (sampled by an
// identical run over a quarter of the events), while the unbounded daemon
// retains the entire log and its heap grows with it. Persisted to
// BENCH_soak.json.
func BenchmarkSoakIngest(b *testing.B) {
	target := *soakEvents
	if target < 4_000 {
		b.Fatalf("-soak.events=%d is too small to reach the compaction steady state", target)
	}
	// Tight rule windows keep the retention floor (look-back + 2x skew
	// slack) at ~1.3s of virtual time — a constant-size window over an
	// arbitrarily long stream, which is the property under test.
	strategy := hbr.Rules{Window: 100 * time.Millisecond, ConfigWindow: 500 * time.Millisecond,
		CrossWindow: 100 * time.Millisecond}
	const compactEvery = 4096

	type soakRes struct {
		events      uint64
		window      int
		compactions int64
		heapBytes   uint64
		elapsed     time.Duration
	}
	run := func(events int, every uint64) soakRes {
		f := stream.Fleet{Routers: 8}
		f.Waves = (events + f.EventsPerWave() - 1) / f.EventsPerWave()
		reg := metrics.NewRegistry()
		d, err := stream.New(stream.Options{Strategy: strategy, Metrics: reg,
			Resolve: f.Resolver(), CompactEvery: every})
		if err != nil {
			b.Fatal(err)
		}
		streams := make([]*stream.Stream, f.Routers)
		for i := range streams {
			streams[i] = d.Register(f.RouterName(i))
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i := range streams {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				streams[i].Consume(f.Reader(i))
			}()
		}
		wg.Wait()
		if err := d.Wait(); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		// Post-GC heap while the daemon (log window + folded graph) is the
		// only thing this run keeps alive.
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return soakRes{events: d.Log().TotalAppended(), window: d.Log().Len(),
			compactions: reg.Counter("stream.compactions").Value(),
			heapBytes:   ms.HeapAlloc, elapsed: elapsed}
	}

	steady := run(target/4, compactEvery)
	var full soakRes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = run(target, compactEvery)
	}
	b.StopTimer()
	offQuarter := run(target/4, 0)
	offFull := run(target, 0)

	mb := func(v uint64) float64 { return float64(v) / (1 << 20) }
	ratio := float64(full.heapBytes) / float64(steady.heapBytes)
	growth := float64(offFull.heapBytes) / float64(offQuarter.heapBytes)
	eventsPerSec := float64(full.events) / full.elapsed.Seconds()
	b.ReportMetric(eventsPerSec, "events/sec")
	b.ReportMetric(mb(full.heapBytes), "heapMB")

	once("soakingest", func() {
		fmt.Printf("\n[tentpole/PR6] always-on soak: %d events, 8 routers, compact every %d\n",
			full.events, compactEvery)
		fmt.Printf("  compaction on:  %8.1f MB heap after %8d events (steady-state %8.1f MB at %d; %.2fx)\n",
			mb(full.heapBytes), full.events, mb(steady.heapBytes), steady.events, ratio)
		fmt.Printf("  compaction off: %8.1f MB heap after %8d events (%8.1f MB at %d; %.2fx growth)\n",
			mb(offFull.heapBytes), offFull.events, mb(offQuarter.heapBytes), offQuarter.events, growth)
		fmt.Printf("  window: %d of %d events retained, %d compactions, %.0f events/sec ingested\n",
			full.window, full.events, full.compactions, eventsPerSec)
		artifact, _ := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkSoakIngest",
			"events":    full.events, "routers": 8, "compact_every": compactEvery,
			"steady_heap_bytes": steady.heapBytes, "final_heap_bytes": full.heapBytes,
			"heap_ratio": ratio, "window_events": full.window, "compactions": full.compactions,
			"events_per_sec":               eventsPerSec,
			"unbounded_quarter_heap_bytes": offQuarter.heapBytes,
			"unbounded_final_heap_bytes":   offFull.heapBytes, "unbounded_growth": growth,
		}, "", "  ")
		if err := os.WriteFile("BENCH_soak.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_soak.json:", err, ")")
		}
	})
	if full.compactions == 0 {
		b.Error("soak never compacted; the flat-memory claim is vacuous")
	}
	if full.window*2 > int(full.events) {
		b.Errorf("compaction retained %d of %d events; the window is not bounded", full.window, full.events)
	}
	if ratio > 2 {
		b.Errorf("soak heap grew to %.2fx the steady-state watermark, want <= 2x (%.1f MB vs %.1f MB)",
			ratio, mb(full.heapBytes), mb(steady.heapBytes))
	}
	if offFull.window != int(offFull.events) {
		b.Errorf("unbounded control dropped events: window %d of %d", offFull.window, offFull.events)
	}
}

// ---------------------------------------------------------------------------
// Tentpole PR8 — scale: timer wheel, compressed trie, interned attributes.
// ---------------------------------------------------------------------------

// scaleK and scalePrefixCount size BenchmarkScaleConvergence. The defaults
// are the acceptance size (fat-tree k=16, 320 routers; 500K prefixes through
// the route-reflector tiers); the CI scale-smoke job runs -scale.k=8
// -scale.prefixes=50000.
var (
	scaleK           = flag.Int("scale.k", 16, "fat-tree arity in BenchmarkScaleConvergence")
	scalePrefixCount = flag.Int("scale.prefixes", 500_000,
		"prefixes announced through the route-reflector tiers in BenchmarkScaleConvergence")
)

// scaleRun is one converged simulation's vitals.
type scaleRun struct {
	routers      int
	events       uint64
	eventsPerSec float64
	rssPerRouter float64
	highWater    int
}

// drainToConvergence runs the network until the event queue empties,
// compacting the capture log between chunks so the post-run heap measures
// routing state (FIBs, tries, RIBs, LSDBs), not retained history. Returns
// the wall time spent firing events.
func drainToConvergence(b *testing.B, n *network.Network) time.Duration {
	b.Helper()
	n.Sched.MaxEvents = 1 << 62 // the scale runs legitimately exceed the 5M default
	start := time.Now()
	// Compaction is driven by retained count, not virtual time: BGP's
	// millisecond timers converge 500K prefixes inside a few hundred
	// virtual milliseconds, so any RunFor cadence would still buffer the
	// whole run (>2 GB of capture IOs) before the first compaction.
	var steps uint64
	for n.Sched.Step() {
		if steps++; steps&0xfff == 0 && n.Log.Len() > 1<<16 {
			n.Log.CompactBefore(n.Log.TotalAppended() + 1)
		}
	}
	n.Log.CompactBefore(n.Log.TotalAppended() + 1)
	return time.Since(start)
}

// BenchmarkScaleConvergence — tentpole PR8: the three hot-path
// optimizations at their target scale. Phase 1 converges a fat-tree
// (default k=16, 320 routers, 2048 links) under the wheel and heap
// scheduler kernels, recording convergence events/sec and post-GC heap per
// router. Phase 2 announces -scale.prefixes routes through the ISP
// route-reflector tiers and measures the interning ratio: bytes that
// per-speaker deep copies would have retained over bytes the canonical
// table actually retains (deterministic, unlike RSS at 500K prefixes).
// Phase 3 replays a scheduler-bound churn kernel workload — full
// simulations dilute the kernel with protocol work — at the larger of the
// measured high-water queue depth and 128K, where the heap pays its log-n
// pops and lazy dead-entry sweeps. Floors (intern ratio >= 5x, wheel >= 2x
// heap on churn events/sec) are enforced here and the whole record is
// persisted to BENCH_scale.json.
func BenchmarkScaleConvergence(b *testing.B) {
	runFatTree := func(b *testing.B, kern netsim.Kernel) (res scaleRun) {
		defer func(k netsim.Kernel) { netsim.DefaultKernel = k }(netsim.DefaultKernel)
		netsim.DefaultKernel = kern
		for i := 0; i < b.N; i++ {
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			n, err := network.BuildFatTree(1, *scaleK)
			if err != nil {
				b.Fatal(err)
			}
			n.Start()
			elapsed := drainToConvergence(b, n)
			runtime.GC()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			res = scaleRun{
				routers:      len(n.Routers()),
				events:       n.Sched.Processed,
				eventsPerSec: float64(n.Sched.Processed) / elapsed.Seconds(),
				rssPerRouter: float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / float64(len(n.Routers())),
				highWater:    n.Sched.HighWater(),
			}
			b.ReportMetric(res.eventsPerSec, "events/sec")
			runtime.KeepAlive(n)
		}
		return res
	}

	runISP := func(b *testing.B) (res scaleRun, ratio float64, stats route.InternStats) {
		prefixes := network.ScalePrefixes(*scalePrefixCount)
		for i := 0; i < b.N; i++ {
			before := route.DefaultInterner.Stats()
			n, err := network.BuildISPRR(1, 2, 1, prefixes)
			if err != nil {
				b.Fatal(err)
			}
			n.Start()
			elapsed := drainToConvergence(b, n)
			// Convergence spot-check at the edge furthest from the origin.
			pe := n.Router("pe1-0")
			for _, p := range []netip.Prefix{prefixes[0], prefixes[len(prefixes)/2], prefixes[len(prefixes)-1]} {
				if _, ok := pe.FIB.Exact(p); !ok {
					b.Fatalf("pe1-0 missing %v after convergence", p)
				}
			}
			stats = route.DefaultInterner.Stats()
			dShared := stats.SharedBytes - before.SharedBytes
			dCanon := stats.CanonicalBytes - before.CanonicalBytes
			if dCanon < 1 {
				dCanon = 1 // attrs already canonical from an earlier benchmark
			}
			ratio = float64(dShared) / float64(dCanon)
			res = scaleRun{
				routers:      len(n.Routers()),
				events:       n.Sched.Processed,
				eventsPerSec: float64(n.Sched.Processed) / elapsed.Seconds(),
				highWater:    n.Sched.HighWater(),
			}
			b.ReportMetric(res.eventsPerSec, "events/sec")
			runtime.KeepAlive(n)
		}
		return res, ratio, stats
	}

	// runChurn replays the watchdog-churn workload: every tick cancels a
	// live far-future timer and rearms it, the access pattern protocol
	// retransmit timers produce. Closures are preallocated so the kernels'
	// schedule/cancel/pop costs dominate the measurement.
	runChurn := func(b *testing.B, kern netsim.Kernel, depth int) (eps float64) {
		const churnFires = 300_000
		noop := func() {}
		for i := 0; i < b.N; i++ {
			s := netsim.NewSchedulerKernel(1, kern)
			watchdogs := make([]*netsim.Timer, depth)
			ticks := make([]func(), 64)
			var fired, cursor int
			for j := range ticks {
				j := j
				ticks[j] = func() {
					c := cursor % depth
					cursor++
					if watchdogs[c] != nil {
						watchdogs[c].Stop()
					}
					watchdogs[c] = s.After(10*time.Second, noop)
					fired++
					if fired < churnFires {
						s.After(time.Duration(1+j%7)*time.Millisecond, ticks[j])
					}
				}
			}
			for j := range ticks {
				s.After(time.Duration(j%97)*time.Millisecond, ticks[j])
			}
			start := time.Now()
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
			eps = float64(s.Processed) / time.Since(start).Seconds()
			b.ReportMetric(eps, "events/sec")
		}
		return eps
	}

	var ftWheel, ftHeap, isp scaleRun
	var internRatio float64
	var internStats route.InternStats
	b.Run("fattree/wheel", func(b *testing.B) { ftWheel = runFatTree(b, netsim.KernelWheel) })
	b.Run("fattree/heap", func(b *testing.B) { ftHeap = runFatTree(b, netsim.KernelHeap) })
	b.Run("isp-rr", func(b *testing.B) { isp, internRatio, internStats = runISP(b) })
	depth := ftWheel.highWater
	if isp.highWater > depth {
		depth = isp.highWater
	}
	if depth < 1<<17 {
		depth = 1 << 17
	}
	var churnWheel, churnHeap float64
	b.Run("churn/wheel", func(b *testing.B) { churnWheel = runChurn(b, netsim.KernelWheel, depth) })
	b.Run("churn/heap", func(b *testing.B) { churnHeap = runChurn(b, netsim.KernelHeap, depth) })
	if ftWheel.eventsPerSec == 0 || ftHeap.eventsPerSec == 0 || isp.eventsPerSec == 0 ||
		churnWheel == 0 || churnHeap == 0 {
		return // sub-benchmarks filtered out
	}
	speedup := churnWheel / churnHeap

	once("scaleconvergence", func() {
		fmt.Printf("\n[tentpole/PR8] scale: fat-tree k=%d (%d routers) + %d prefixes through RR tiers\n",
			*scaleK, ftWheel.routers, *scalePrefixCount)
		fmt.Printf("  fat-tree OSPF convergence: wheel %9.0f events/sec, heap %9.0f events/sec (%d events)\n",
			ftWheel.eventsPerSec, ftHeap.eventsPerSec, ftWheel.events)
		fmt.Printf("  heap per router after convergence: %.2f MB\n", ftWheel.rssPerRouter/(1<<20))
		fmt.Printf("  ISP RR convergence: %d events, %9.0f events/sec, %d routers\n",
			isp.events, isp.eventsPerSec, isp.routers)
		fmt.Printf("  intern ratio %.1fx (deep-copy bytes over canonical; %d unique attr sets, %d live refs)\n",
			internRatio, internStats.Unique, internStats.LiveRefs)
		fmt.Printf("  kernel churn replay at depth %d: wheel %9.0f vs heap %9.0f events/sec => %.2fx\n",
			depth, churnWheel, churnHeap, speedup)
		artifact, _ := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkScaleConvergence",
			"fattree_k": *scaleK, "fattree_routers": ftWheel.routers,
			"fattree_events":               ftWheel.events,
			"fattree_wheel_events_per_sec": ftWheel.eventsPerSec,
			"fattree_heap_events_per_sec":  ftHeap.eventsPerSec,
			"fattree_rss_bytes_per_router": ftWheel.rssPerRouter,
			"isp_prefixes":                 *scalePrefixCount,
			"isp_routers":                  isp.routers,
			"isp_events":                   isp.events,
			"isp_events_per_sec":           isp.eventsPerSec,
			"intern_ratio":                 internRatio,
			"intern_unique":                internStats.Unique,
			"intern_live_refs":             internStats.LiveRefs,
			"churn_depth":                  depth,
			"churn_wheel_events_per_sec":   churnWheel,
			"churn_heap_events_per_sec":    churnHeap,
			"churn_speedup":                speedup,
			"floors":                       map[string]float64{"intern_ratio_min": 5, "churn_speedup_min": 2},
		}, "", "  ")
		if err := os.WriteFile("BENCH_scale.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_scale.json:", err, ")")
		}
	})
	if internRatio < 5 {
		b.Errorf("interning retains %.1fx fewer route-storage bytes than deep copies, want >= 5x", internRatio)
	}
	if speedup < 2 {
		b.Errorf("wheel kernel %.2fx heap on churn events/sec, want >= 2x (%.0f vs %.0f)",
			speedup, churnWheel, churnHeap)
	}
}

// ---------------------------------------------------------------------------
// E20 — tentpole PR9: verification as a query service.
// ---------------------------------------------------------------------------

// serveK, serveClients, and serveQueries size BenchmarkServeQueries. The
// defaults are the acceptance size (fat-tree k=8, 80 routers, 30K mixed
// queries per measured run from 8 concurrent clients); the CI serve-smoke
// job runs -serve.k=4 -serve.queries=6000.
var (
	serveK       = flag.Int("serve.k", 8, "fat-tree arity in BenchmarkServeQueries")
	serveClients = flag.Int("serve.clients", 8, "concurrent query clients in BenchmarkServeQueries")
	serveQueries = flag.Int("serve.queries", 30_000,
		"mixed queries per measured run in BenchmarkServeQueries")
)

// BenchmarkServeQueries — tentpole PR9: sustained mixed verification
// queries (reachability, waypoint, isolation over edge-to-edge pairs)
// against a converged fat-tree whose FIBs churn under the queries' feet.
// A background writer flips a static on a rotating edge router, driving
// per-router plan invalidation through the walk cache's epoch/floor
// machinery. Two engine modes run the same workload: the shared plan
// cache (queries over one forwarding class share one walk; misses
// coalesce) versus the plan-per-query baseline (DisableCache: every
// query pays for its own walk, no coalescing). The >= 5x QPS floor for
// the cached path is enforced here and the record — QPS both ways, p50
// and p99 service latency, cache-hit ratio, shed count — is persisted to
// BENCH_serve.json.
func BenchmarkServeQueries(b *testing.B) {
	k := *serveK
	n, err := network.BuildFatTree(1, k)
	if err != nil {
		b.Fatal(err)
	}
	n.Start()
	drainToConvergence(b, n)

	// Edge routers are the query sources; their loopbacks the targets.
	half := k / 2
	var edges []string
	var prefixes []netip.Prefix
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			edges = append(edges, fmt.Sprintf("p%de%d", p, i))
			prefixes = append(prefixes, route.MustPrefix(fmt.Sprintf("9.1.%d.%d/32", p, i+1)))
		}
	}
	pipe := NewPipeline(n, edges)
	defer pipe.Close()

	// The mixed workload: one query kind per ordered edge pair, so every
	// query maps to a distinct (source, probe) plan and repeat passes over
	// the pool are the cache's steady state.
	var queries []serve.Query
	for si, src := range edges {
		for di, pfx := range prefixes {
			if si == di {
				continue
			}
			switch (si + di) % 3 {
			case 0:
				queries = append(queries, serve.Reachability(src, pfx))
			case 1:
				// The destination pod's first aggregation router is on
				// every inter-pod path into that pod.
				queries = append(queries, serve.Waypoint(src, pfx, fmt.Sprintf("p%da0", di/half)))
			default:
				queries = append(queries, serve.Isolation(src, pfx, "core0"))
			}
		}
	}

	// Churn: flip a static on a rotating edge router every ~200us. Each
	// flip fires the FIB OnChange hook and invalidates exactly the plans
	// whose walk crossed that router.
	churnStop := make(chan struct{})
	var churnFlips atomic.Int64
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rt := route.Route{
			Prefix:  netip.MustParsePrefix("55.0.0.0/24"),
			Proto:   route.ProtoStatic,
			NextHop: netip.MustParseAddr("10.255.255.1"),
		}
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			f := n.Router(edges[i%len(edges)]).FIB
			if i%2 == 0 {
				f.Offer(rt)
			} else {
				f.Withdraw(route.ProtoStatic, rt.Prefix)
			}
			churnFlips.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	defer func() {
		close(churnStop)
		churnWG.Wait()
	}()

	drive := func(b *testing.B, eng *serve.Engine) (qps float64, stats serve.Stats) {
		clients := *serveClients
		per := *serveQueries / clients
		for i := 0; i < b.N; i++ {
			before := eng.Stats()
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for q := 0; q < per; q++ {
						if _, err := eng.Query(queries[(c*per+q)%len(queries)]); err != nil &&
							!errors.Is(err, serve.ErrOverloaded) {
							b.Errorf("query: %v", err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			after := eng.Stats()
			stats = serve.Stats{
				Queries:   after.Queries - before.Queries,
				PlanHits:  after.PlanHits - before.PlanHits,
				Coalesced: after.Coalesced - before.Coalesced,
				Executed:  after.Executed - before.Executed,
				Rejected:  after.Rejected - before.Rejected,
			}
			qps = float64(stats.Queries) / elapsed.Seconds()
			b.ReportMetric(qps, "queries/sec")
		}
		return qps, stats
	}

	var cachedQPS, baselineQPS float64
	var cachedStats, baselineStats serve.Stats
	var p50, p99 time.Duration
	b.Run("plan-cache", func(b *testing.B) {
		eng := pipe.ServeEngine(nil)
		defer eng.Close()
		cachedQPS, cachedStats = drive(b, eng)
		hist := eng.Metrics().Histogram("serve.query.latency")
		p50, p99 = hist.Quantile(0.5), hist.Quantile(0.99)
	})
	b.Run("plan-per-query", func(b *testing.B) {
		eng := serve.New(serve.Config{
			Executor:     serve.WalkerExecutor{W: pipe.Walker()},
			Metrics:      metrics.NewRegistry(),
			DisableCache: true,
		})
		defer eng.Close()
		baselineQPS, baselineStats = drive(b, eng)
	})
	if cachedQPS == 0 || baselineQPS == 0 {
		return // sub-benchmarks filtered out
	}
	speedup := cachedQPS / baselineQPS

	once("servequeries", func() {
		fmt.Printf("\n[tentpole/PR9] query service: fat-tree k=%d (%d routers), %d clients, %d mixed queries/run, FIB churn every 200us\n",
			k, len(n.Routers()), *serveClients, *serveQueries)
		fmt.Printf("  plan-cache:     %10.0f queries/sec  hit ratio %.3f (%d hits, %d coalesced, %d walks, %d shed)\n",
			cachedQPS, cachedStats.HitRatio(), cachedStats.PlanHits, cachedStats.Coalesced,
			cachedStats.Executed, cachedStats.Rejected)
		fmt.Printf("  plan-per-query: %10.0f queries/sec  (%d walks executed)\n",
			baselineQPS, baselineStats.Executed)
		fmt.Printf("  service latency p50 %v, p99 %v; churn flips during run: %d\n",
			p50, p99, churnFlips.Load())
		fmt.Printf("  sustained QPS %.1fx plan-per-query\n", speedup)
		artifact, _ := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkServeQueries",
			"fattree_k": k, "routers": len(n.Routers()),
			"clients": *serveClients, "queries_per_run": *serveQueries,
			"cached_queries_per_sec":   cachedQPS,
			"baseline_queries_per_sec": baselineQPS,
			"qps_speedup":              speedup,
			"cache_hit_ratio":          cachedStats.HitRatio(),
			"plan_hits":                cachedStats.PlanHits,
			"coalesced":                cachedStats.Coalesced,
			"walks_executed":           cachedStats.Executed,
			"shed":                     cachedStats.Rejected,
			"p50_micros":               p50.Microseconds(),
			"p99_micros":               p99.Microseconds(),
			"churn_flips":              churnFlips.Load(),
			"floors":                   map[string]float64{"qps_speedup_min": 5},
		}, "", "  ")
		if err := os.WriteFile("BENCH_serve.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_serve.json:", err, ")")
		}
	})
	if speedup < 5 {
		b.Errorf("plan-cache path sustains %.1fx plan-per-query QPS, want >= 5x (%.0f vs %.0f queries/sec)",
			speedup, cachedQPS, baselineQPS)
	}
}

var distQueryCount = flag.Int("distquery.n", 2000,
	"sequential queries per mode in BenchmarkDistQueryLatency")

// BenchmarkDistQueryLatency — query latency with plans executed as
// single-walk fleet rounds (serve.DistExecutor: one correlation-isolated
// round per plan through the TCP coordinator) versus central walks
// (serve.WalkerExecutor over the live FIBs). Both engines run
// plan-per-query (DisableCache, unbounded queue) and the queries run
// sequentially, so the p50/p99 spread is pure executor cost: frame
// round-trips per hop for the fleet against in-process map lookups for
// the walker. Folded into BENCH_serve.json under "dist_query".
func BenchmarkDistQueryLatency(b *testing.B) {
	const k = 4
	n, err := network.BuildFatTree(1, k)
	if err != nil {
		b.Fatal(err)
	}
	n.Start()
	drainToConvergence(b, n)

	half := k / 2
	var edges []string
	var prefixes []netip.Prefix
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			edges = append(edges, fmt.Sprintf("p%de%d", p, i))
			prefixes = append(prefixes, route.MustPrefix(fmt.Sprintf("9.1.%d.%d/32", p, i+1)))
		}
	}
	var queries []serve.Query
	for si, src := range edges {
		for di, pfx := range prefixes {
			if si != di {
				queries = append(queries, serve.Reachability(src, pfx))
			}
		}
	}

	coord, nodes, teardown, err := dist.BuildFleet(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer teardown()

	drive := func(b *testing.B, eng *serve.Engine) (p50, p99 time.Duration) {
		for i := 0; i < b.N; i++ {
			for q := 0; q < *distQueryCount; q++ {
				if _, err := eng.Query(queries[q%len(queries)]); err != nil {
					b.Fatalf("query: %v", err)
				}
			}
		}
		hist := eng.Metrics().Histogram("serve.query.latency")
		p50, p99 = hist.Quantile(0.5), hist.Quantile(0.99)
		b.ReportMetric(float64(p99.Microseconds()), "p99-us")
		return p50, p99
	}

	var distP50, distP99, walkP50, walkP99 time.Duration
	b.Run("fleet-round", func(b *testing.B) {
		eng := serve.New(serve.Config{
			Executor:     &serve.DistExecutor{Coord: coord, Nodes: nodes},
			Metrics:      metrics.NewRegistry(),
			DisableCache: true,
			MaxQueue:     -1,
		})
		defer eng.Close()
		distP50, distP99 = drive(b, eng)
	})
	b.Run("central-walk", func(b *testing.B) {
		tables := map[string]*fib.Table{}
		for _, r := range n.Routers() {
			tables[r.Name] = r.FIB
		}
		eng := serve.New(serve.Config{
			Executor:     serve.WalkerExecutor{W: dataplane.NewWalker(n.Topo, dataplane.TableView(tables))},
			Metrics:      metrics.NewRegistry(),
			DisableCache: true,
			MaxQueue:     -1,
		})
		defer eng.Close()
		walkP50, walkP99 = drive(b, eng)
	})
	if distP99 == 0 || walkP99 == 0 {
		return // sub-benchmarks filtered out
	}

	once("distquerylatency", func() {
		fmt.Printf("\n[satellite] dist query latency: fat-tree k=%d (%d routers), %d sequential queries per mode\n",
			k, len(n.Routers()), *distQueryCount)
		fmt.Printf("  fleet-round:  p50 %v, p99 %v\n", distP50, distP99)
		fmt.Printf("  central-walk: p50 %v, p99 %v\n", walkP50, walkP99)
		record := map[string]interface{}{
			"benchmark": "BenchmarkDistQueryLatency",
			"fattree_k": k, "routers": len(n.Routers()), "queries_per_mode": *distQueryCount,
			"fleet_p50_micros":   distP50.Microseconds(),
			"fleet_p99_micros":   distP99.Microseconds(),
			"central_p50_micros": walkP50.Microseconds(),
			"central_p99_micros": walkP99.Microseconds(),
		}
		// Fold into BENCH_serve.json next to the query-service record.
		merged := map[string]interface{}{}
		if prev, err := os.ReadFile("BENCH_serve.json"); err == nil {
			_ = json.Unmarshal(prev, &merged)
		}
		merged["dist_query"] = record
		artifact, _ := json.MarshalIndent(merged, "", "  ")
		if err := os.WriteFile("BENCH_serve.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_serve.json:", err, ")")
		}
	})
}

var (
	localckK       = flag.Int("localck.k", 8, "fat-tree arity in BenchmarkLocalCheck")
	localckUpdates = flag.Int("localck.updates", 8,
		"churn updates (link flap half-cycles) per measured run in BenchmarkLocalCheck")
)

// BenchmarkLocalCheck — tentpole PR10: per-update wire cost of the
// local-check verification mode against per-walk distributed rounds. A
// converged fat-tree takes single-link churn (the p0e1–p0a0 link flaps;
// each half-cycle is one update batch), and after every update two fleets
// verify the same six policies (Reachable/NoLoop/NoBlackhole over the
// p0e0 and far-pod edge loopbacks) from every edge router. The per-walk
// fleet ships view deltas and re-walks every check whose retained path
// crossed a dirty router; the local-check fleet ships the same deltas
// with sync IDs and certifies every pair from per-router invariant
// checks — the flap narrows and widens ECMP sets but never breaks
// label monotonicity for the measured classes, so quiet updates cost
// only the delta and report frames. Floors: >= 10x fewer bytes/update
// and >= 5x fewer frames/update, enforced here and persisted with the
// record to BENCH_localck.json.
func BenchmarkLocalCheck(b *testing.B) {
	k := *localckK
	updates := *localckUpdates
	if updates%2 != 0 {
		b.Fatalf("-localck.updates must be even (flap half-cycles), got %d", updates)
	}
	n, err := network.BuildFatTree(1, k)
	if err != nil {
		b.Fatal(err)
	}
	n.Start()
	drainToConvergence(b, n)

	half := k / 2
	var edgeSources []string
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			edgeSources = append(edgeSources, fmt.Sprintf("p%de%d", p, i))
		}
	}
	classes := []netip.Prefix{
		route.MustPrefix("9.1.0.1/32"),                    // p0e0 loopback
		route.MustPrefix(fmt.Sprintf("9.1.%d.1/32", k-1)), // p{k-1}e0 loopback
	}
	var policies []verify.Policy
	for _, c := range classes {
		policies = append(policies,
			verify.Policy{Kind: verify.Reachable, Prefix: c},
			verify.Policy{Kind: verify.NoLoop, Prefix: c},
			verify.Policy{Kind: verify.NoBlackhole, Prefix: c})
	}

	// Dirty tracking shared by both fleets: every FIB change and link flip
	// marks its router, exactly as the pipeline's hooks do.
	var dirtyMu sync.Mutex
	dirtySet := map[string]bool{}
	for _, r := range n.Routers() {
		name := r.Name
		r.FIB.OnChange(func(fib.Update) {
			dirtyMu.Lock()
			dirtySet[name] = true
			dirtyMu.Unlock()
		})
	}
	n.OnLinkChange(func(a, bb string, up bool) {
		dirtyMu.Lock()
		dirtySet[a] = true
		dirtySet[bb] = true
		dirtyMu.Unlock()
	})
	takeDirty := func() []string {
		dirtyMu.Lock()
		defer dirtyMu.Unlock()
		out := make([]string, 0, len(dirtySet))
		for r := range dirtySet {
			out = append(out, r)
		}
		dirtySet = map[string]bool{}
		sort.Strings(out)
		return out
	}

	walkCoord, walkNodes, walkDown, err := dist.BuildFleet(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer walkDown()
	localCoord, localNodes, localDown, err := dist.BuildFleet(n, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer localDown()
	if _, err := localCoord.Relabel(localNodes, classes); err != nil {
		b.Fatal(err)
	}
	takeDirty() // fleets were built from the converged views: start clean

	type tally struct {
		frames, bytes int64
		walks, checks int
	}
	var walkT, localT tally
	var certified, escalated, violations int

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		walkT, localT = tally{}, tally{}
		certified, escalated, violations = 0, 0, 0
		for u := 0; u < updates; u++ {
			if _, err := n.SetLinkUp("p0e1", "p0a0", u%2 != 0); err != nil {
				b.Fatal(err)
			}
			drainToConvergence(b, n)
			dirty := takeDirty()
			views := map[string]dist.LocalView{}
			for _, r := range dirty {
				if rt := n.Router(r); rt != nil {
					views[r] = dist.LocalViewOf(rt)
				}
			}

			// Per-walk round: sync deltas, then re-walk everything the
			// dirty set touches.
			f0, b0 := walkCoord.FleetWire(walkNodes)
			if _, err := walkCoord.SyncViews(walkNodes, views, dirty); err != nil {
				b.Fatal(err)
			}
			wstats, err := walkCoord.VerifyWith(walkNodes, policies, edgeSources, dist.VerifyOpts{Dirty: dirty})
			if err != nil {
				b.Fatal(err)
			}
			if !wstats.Report.OK() {
				b.Fatalf("update %d: per-walk round found violations: %+v", u, wstats.Report.Violations)
			}
			f1, b1 := walkCoord.FleetWire(walkNodes)
			walkT.frames += f1 - f0
			walkT.bytes += b1 - b0
			walkT.walks += wstats.Walks
			walkT.checks += wstats.Report.Checked

			// Local-check round: same deltas with sync IDs, certification
			// from per-router invariants, walks only on escalation.
			f0, b0 = localCoord.FleetWire(localNodes)
			if _, err := localCoord.SyncViewsChecked(localNodes, views, dirty, 0); err != nil {
				b.Fatal(err)
			}
			lstats, err := localCoord.VerifyLocal(localNodes, policies, edgeSources, dist.VerifyOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if !lstats.Report.OK() {
				b.Fatalf("update %d: local-check round found violations: %+v", u, lstats.Report.Violations)
			}
			if lstats.Report.Checked != wstats.Report.Checked {
				b.Fatalf("update %d: local-check checked %d, per-walk %d",
					u, lstats.Report.Checked, wstats.Report.Checked)
			}
			f1, b1 = localCoord.FleetWire(localNodes)
			localT.frames += f1 - f0
			localT.bytes += b1 - b0
			localT.walks += lstats.Walks
			localT.checks += lstats.Report.Checked
			certified += lstats.LocalCertified
			escalated += lstats.Escalated
			violations += lstats.LocalViolations
		}
	}
	b.StopTimer()

	walkBytesPer := float64(walkT.bytes) / float64(updates)
	walkFramesPer := float64(walkT.frames) / float64(updates)
	localBytesPer := float64(localT.bytes) / float64(updates)
	localFramesPer := float64(localT.frames) / float64(updates)
	bytesRatio := walkBytesPer / localBytesPer
	framesRatio := walkFramesPer / localFramesPer
	b.ReportMetric(localBytesPer, "local-bytes/update")
	b.ReportMetric(bytesRatio, "bytes-ratio")

	once("localcheck", func() {
		fmt.Printf("\n[tentpole/PR10] local-check mode: fat-tree k=%d (%d routers), %d edge sources, %d checks/round, %d updates (p0e1-p0a0 flaps)\n",
			k, len(n.Routers()), len(edgeSources), len(policies)*len(edgeSources), updates)
		fmt.Printf("  per-walk rounds:    %8.0f bytes/update, %6.1f frames/update (%d walks total)\n",
			walkBytesPer, walkFramesPer, walkT.walks)
		fmt.Printf("  local-check rounds: %8.0f bytes/update, %6.1f frames/update (%d certified, %d escalated, %d violations)\n",
			localBytesPer, localFramesPer, certified, escalated, violations)
		fmt.Printf("  wire reduction: %.1fx fewer bytes, %.1fx fewer frames per update\n", bytesRatio, framesRatio)
		artifact, _ := json.MarshalIndent(map[string]interface{}{
			"benchmark": "BenchmarkLocalCheck",
			"fattree_k": k, "routers": len(n.Routers()),
			"edge_sources": len(edgeSources), "updates": updates,
			"checks_per_round":          len(policies) * len(edgeSources),
			"perwalk_bytes_per_update":  walkBytesPer,
			"perwalk_frames_per_update": walkFramesPer,
			"local_bytes_per_update":    localBytesPer,
			"local_frames_per_update":   localFramesPer,
			"bytes_ratio":               bytesRatio,
			"frames_ratio":              framesRatio,
			"local_certified":           certified,
			"escalated":                 escalated,
			"local_violations":          violations,
			"floors":                    map[string]float64{"bytes_ratio_min": 10, "frames_ratio_min": 5},
		}, "", "  ")
		if err := os.WriteFile("BENCH_localck.json", append(artifact, '\n'), 0o644); err != nil {
			fmt.Println("  (could not write BENCH_localck.json:", err, ")")
		}
	})
	if bytesRatio < 10 {
		b.Errorf("local-check mode ships %.1fx fewer bytes/update than per-walk rounds, want >= 10x (%.0f vs %.0f)",
			bytesRatio, walkBytesPer, localBytesPer)
	}
	if framesRatio < 5 {
		b.Errorf("local-check mode ships %.1fx fewer frames/update than per-walk rounds, want >= 5x (%.1f vs %.1f)",
			framesRatio, walkFramesPer, localFramesPer)
	}
}
