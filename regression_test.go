package hbverify

import (
	"reflect"
	"testing"

	"hbverify/internal/capture"
	"hbverify/internal/config"
	"hbverify/internal/hbr"
	"hbverify/internal/verify"
)

// TestIncrementalInvalidatedByRollback pins the interaction the scenario
// harness's repair oracle depends on: when a repair rollback lands between
// incremental inference rounds, the cached graph must be invalidated —
// the rollback's ConfigChange plus the reconvergence it triggers are new
// log suffix, but the cache must not serve any state poisoned by the
// pre-rollback round — and the next inference must match a from-scratch
// Rules pass exactly.
func TestIncrementalInvalidatedByRollback(t *testing.T) {
	pn, p := startPaper(t)

	// Round 1: warm the incremental cache on the healthy network.
	p.Graph()
	invalidations := func() int64 {
		return p.Metrics.Counter("infer.cache.invalidations").Value()
	}
	if invalidations() != 0 {
		t.Fatalf("cache invalidated before any repair: %d", invalidations())
	}

	// Fault: the same localpref misconfiguration the paper repairs.
	if _, err := pn.UpdateConfig("r2", "lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}

	// Round 2: incremental inference sees the fault's suffix.
	p.Graph()

	// Repair rollback lands between incremental rounds.
	policies := []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
	d, err := p.DetectAndRepair(policies)
	if err != nil {
		t.Fatal(err)
	}
	if !d.RolledBack {
		t.Fatalf("no rollback: %s", d)
	}
	if invalidations() < 1 {
		t.Fatal("rollback did not invalidate the incremental inference cache")
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}

	// Round 3: post-rollback inference must equal a fresh full pass.
	got := p.Graph()
	want := hbr.Rules{}.Infer(capture.StripOracle(pn.Log.All()))
	if got.NodeCount() != want.NodeCount() {
		t.Fatalf("post-rollback nodes: incremental %d, full %d", got.NodeCount(), want.NodeCount())
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatalf("post-rollback edges diverge: incremental %d, full %d",
			len(got.Edges()), len(want.Edges()))
	}

	// And the repaired network verifies clean.
	if rep := p.Verify(policies); !rep.OK() {
		t.Fatalf("not repaired: %v", rep.Violations)
	}
}
