package hbverify

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/config"
	"hbverify/internal/hbr"
	"hbverify/internal/netsim"
	"hbverify/internal/network"
	"hbverify/internal/snapshot"
	"hbverify/internal/verify"
)

func startPaper(t *testing.T) (*network.PaperNet, *Pipeline) {
	t.Helper()
	pn, err := network.BuildPaper(1, network.DefaultPaperOpts())
	if err != nil {
		t.Fatal(err)
	}
	pn.Start()
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	return pn, NewPipeline(pn.Network, []string{"r1", "r2", "r3"})
}

func TestPipelineVerifyHealthy(t *testing.T) {
	pn, p := startPaper(t)
	rep := p.Verify([]verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}})
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if p.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestPipelineEndToEndRepair(t *testing.T) {
	pn, p := startPaper(t)
	if _, err := pn.UpdateConfig("r2", "lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	policies := []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
	d, err := p.DetectAndRepair(policies)
	if err != nil {
		t.Fatal(err)
	}
	if !d.RolledBack {
		t.Fatalf("diagnosis = %s", d)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	if rep := p.Verify(policies); !rep.OK() {
		t.Fatalf("not repaired: %v", rep.Violations)
	}
}

func TestPipelineAccuracy(t *testing.T) {
	_, p := startPaper(t)
	m := p.Accuracy()
	// Full-log inference (convergence included) is imperfect by design —
	// §4.2 expects to trade precision and recall; the Fig. 2 slice alone
	// scores >0.9 on both (see internal/hbr tests).
	if m.Precision < 0.8 || m.Recall < 0.85 {
		t.Fatalf("rules accuracy too low: %+v", m)
	}
	// Ground truth graph exists and is acyclic.
	if _, err := p.GroundTruth().TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineVerifySnapshot(t *testing.T) {
	pn, p := startPaper(t)
	rep, res := p.VerifySnapshot(snapshot.Cut{}, []verify.Policy{
		{Kind: verify.NoLoop, Prefix: pn.P},
	})
	if !res.Consistent || !rep.OK() {
		t.Fatalf("rep=%v res=%+v", rep.Summary(), res)
	}
}

// TestPipelineCompactLog exercises the always-on bounded-memory path at
// the Pipeline layer: fold-then-evict must leave Graph and RootCauses
// answers for retained events identical to a full inference pruned to the
// same floor.
func TestPipelineCompactLog(t *testing.T) {
	pn, p := startPaper(t)
	rules := hbr.Rules{Window: 50 * time.Millisecond,
		ConfigWindow: 100 * time.Millisecond, CrossWindow: 50 * time.Millisecond}
	inc := hbr.NewIncremental(rules, p.Metrics)
	inc.SkewSlack = 10 * time.Millisecond
	p.Strategy = inc

	// The paper scenario converges within ~30ms of virtual time — nothing
	// would age past any sound retention floor. Drip config churn far past
	// that burst so CompactLog has history to evict.
	last := pn.Log.All()[pn.Log.Len()-1].Time
	for i := 0; i < 40; i++ {
		last += netsim.VirtualTime(50 * time.Millisecond)
		pn.Log.Append(capture.IO{Router: "r1", Type: capture.ConfigChange,
			Detail: fmt.Sprintf("drip %d", i), Time: last, TrueTime: last})
	}
	total := pn.Log.Len()
	all := capture.StripOracle(pn.Log.All())

	evicted := p.CompactLog(0) // 0 clamps up to lookback + skew slack
	if evicted == 0 {
		t.Fatal("CompactLog evicted nothing")
	}
	if got := pn.Log.Len(); got != total-evicted {
		t.Fatalf("window holds %d events after evicting %d of %d", got, evicted, total)
	}

	got := p.Graph()
	want := rules.Infer(all)
	want.PruneBefore(got.PrunedBelow())
	if g, w := got.NodeCount(), want.NodeCount(); g != w {
		t.Fatalf("compacted graph has %d nodes, pruned full inference has %d", g, w)
	}
	if g, w := got.EdgeCount(), want.EdgeCount(); g != w {
		t.Fatalf("compacted graph has %d edges, pruned full inference has %d", g, w)
	}
	for _, io := range pn.Log.Snapshot() {
		if g, w := got.RootCauses(io.ID), want.RootCauses(io.ID); !reflect.DeepEqual(g, w) {
			t.Fatalf("RootCauses(%d) diverge after compaction: %v vs %v", io.ID, g, w)
		}
	}

	// A second compaction with nothing newly old is a no-op.
	if n := p.CompactLog(0); n != 0 {
		t.Fatalf("repeat CompactLog evicted %d events", n)
	}
}

func TestPipelineRootCause(t *testing.T) {
	pn, p := startPaper(t)
	var fibIO capture.IO
	for _, io := range pn.Log.ForRouter("r3") {
		if io.Type == capture.FIBInstall && io.Prefix == pn.P {
			fibIO = io
		}
	}
	roots := p.RootCause(fibIO.ID)
	if len(roots) == 0 {
		t.Fatal("no roots")
	}
	for _, r := range roots {
		if r.Type != capture.ConfigChange {
			t.Fatalf("unexpected root: %v", r)
		}
	}
}
