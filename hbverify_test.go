package hbverify

import (
	"testing"

	"hbverify/internal/capture"
	"hbverify/internal/config"
	"hbverify/internal/network"
	"hbverify/internal/snapshot"
	"hbverify/internal/verify"
)

func startPaper(t *testing.T) (*network.PaperNet, *Pipeline) {
	t.Helper()
	pn, err := network.BuildPaper(1, network.DefaultPaperOpts())
	if err != nil {
		t.Fatal(err)
	}
	pn.Start()
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	return pn, NewPipeline(pn.Network, []string{"r1", "r2", "r3"})
}

func TestPipelineVerifyHealthy(t *testing.T) {
	pn, p := startPaper(t)
	rep := p.Verify([]verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}})
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if p.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestPipelineEndToEndRepair(t *testing.T) {
	pn, p := startPaper(t)
	if _, err := pn.UpdateConfig("r2", "lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	policies := []verify.Policy{{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"}}
	d, err := p.DetectAndRepair(policies)
	if err != nil {
		t.Fatal(err)
	}
	if !d.RolledBack {
		t.Fatalf("diagnosis = %s", d)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	if rep := p.Verify(policies); !rep.OK() {
		t.Fatalf("not repaired: %v", rep.Violations)
	}
}

func TestPipelineAccuracy(t *testing.T) {
	_, p := startPaper(t)
	m := p.Accuracy()
	// Full-log inference (convergence included) is imperfect by design —
	// §4.2 expects to trade precision and recall; the Fig. 2 slice alone
	// scores >0.9 on both (see internal/hbr tests).
	if m.Precision < 0.8 || m.Recall < 0.85 {
		t.Fatalf("rules accuracy too low: %+v", m)
	}
	// Ground truth graph exists and is acyclic.
	if _, err := p.GroundTruth().TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineVerifySnapshot(t *testing.T) {
	pn, p := startPaper(t)
	rep, res := p.VerifySnapshot(snapshot.Cut{}, []verify.Policy{
		{Kind: verify.NoLoop, Prefix: pn.P},
	})
	if !res.Consistent || !rep.OK() {
		t.Fatalf("rep=%v res=%+v", rep.Summary(), res)
	}
}

func TestPipelineRootCause(t *testing.T) {
	pn, p := startPaper(t)
	var fibIO capture.IO
	for _, io := range pn.Log.ForRouter("r3") {
		if io.Type == capture.FIBInstall && io.Prefix == pn.P {
			fibIO = io
		}
	}
	roots := p.RootCause(fibIO.ID)
	if len(roots) == 0 {
		t.Fatal("no roots")
	}
	for _, r := range roots {
		if r.Type != capture.ConfigChange {
			t.Fatalf("unexpected root: %v", r)
		}
	}
}
