package hbverify

import (
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"hbverify/internal/route"
	"hbverify/internal/serve"
	"hbverify/internal/verify"
	"hbverify/internal/whatif"
)

// ServeEngine answers must match the pipeline's own batch Verify, share
// its walk cache, and surface serve.* metrics through Summary().
func TestPipelineServeEngine(t *testing.T) {
	pn, p := startPaper(t)
	policies := []verify.Policy{
		{Kind: verify.Reachable, Prefix: pn.P},
		{Kind: verify.NoLoop, Prefix: pn.P},
	}
	e := p.ServeEngine(policies)
	defer e.Close()

	// Batch first: its walks populate the shared cache, so the query is a
	// plan-cache hit.
	if rep := p.Verify(policies); !rep.OK() {
		t.Fatalf("batch violations: %v", rep.Violations)
	}
	ans, err := e.Query(serve.Reachability("r1", pn.P))
	if err != nil {
		t.Fatal(err)
	}
	if !ans.OK {
		t.Errorf("query violations: %+v", ans.Violations)
	}
	if !ans.CacheHit {
		t.Error("query after batch Verify should hit the shared plan cache")
	}

	// What-if through the same engine: losing both providers strands P.
	wa, err := e.Query(serve.WhatIf("both-providers",
		whatif.LinkFailure("r1", "e1"), whatif.LinkFailure("r2", "e2")))
	if err != nil {
		t.Fatal(err)
	}
	if wa.OK {
		t.Error("what-if must report the introduced reachability violation")
	}

	if s := p.Summary(); !strings.Contains(s, "serve.query.latency") {
		t.Errorf("Summary missing serve metrics: %q", s)
	}
}

// TestQueriesUnderChurn races concurrent queries against live FIB churn
// and log compaction — the always-on deployment: verifyd serving operator
// queries while the control plane converges and the capture window rolls.
// Run under -race in CI.
func TestQueriesUnderChurn(t *testing.T) {
	pn, p := startPaper(t)
	e := p.ServeEngine(nil)
	defer e.Close()

	churnPrefix := netip.MustParsePrefix("55.0.0.0/24")
	stop := make(chan struct{})
	var bg sync.WaitGroup

	// FIB churn on r1: offer/withdraw a static, driving OnChange →
	// per-router plan invalidation under the queries' feet.
	bg.Add(1)
	go func() {
		defer bg.Done()
		r1 := pn.Router("r1").FIB
		rt := route.Route{
			Prefix: churnPrefix, Proto: route.ProtoStatic,
			NextHop: netip.MustParseAddr("10.0.12.2"),
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r1.Offer(rt)
			} else {
				r1.Withdraw(route.ProtoStatic, churnPrefix)
			}
		}
	}()

	// Log compaction: fold-and-evict the capture window while queries run.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.CompactLog(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sources := []string{"r1", "r2", "r3"}
			for i := 0; i < 50; i++ {
				src := sources[(g+i)%len(sources)]
				queries := []serve.Query{
					serve.Reachability(src, pn.P),
					serve.Waypoint("r3", pn.P, "r2"),
					serve.Reachability(src, churnPrefix),
				}
				ans, err := e.Query(queries[i%len(queries)])
				if err != nil && !errors.Is(err, serve.ErrOverloaded) {
					t.Errorf("query: %v", err)
					return
				}
				// The stable paper policy must hold whatever the unrelated
				// churn prefix is doing.
				if err == nil && i%len(queries) == 0 && !ans.OK {
					t.Errorf("stable reachability violated during churn: %+v", ans.Violations)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	bg.Wait()

	if st := e.Stats(); st.Queries == 0 {
		t.Fatal("no queries answered")
	}
}
