package hbverify

import (
	"testing"

	"hbverify/internal/config"
	"hbverify/internal/verify"
)

// TestPipelineVerifyDistributed drives the distributed verification path
// end-to-end through the pipeline: first round builds the fleet and walks
// live, a quiet second round never touches the network (walk-cache and
// clean-reuse skips), and a control-plane change ships only the dirty
// routers' view deltas before re-walking — with the verdict flipping
// accordingly.
func TestPipelineVerifyDistributed(t *testing.T) {
	pn, p := startPaper(t)
	defer p.Close()
	policies := []verify.Policy{
		{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"},
		{Kind: verify.NoLoop, Prefix: pn.P},
	}

	first, err := p.VerifyDistributed(policies)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Report.OK() || first.Frames == 0 {
		t.Fatalf("cold distributed verify: report=%+v frames=%d", first.Report, first.Frames)
	}

	second, err := p.VerifyDistributed(policies)
	if err != nil {
		t.Fatal(err)
	}
	if second.Frames != 0 || second.Bytes != 0 {
		t.Fatalf("quiet round touched the network: %d frames, %d bytes", second.Frames, second.Bytes)
	}
	if second.CacheSkipped+second.CleanSkipped != second.Walks {
		t.Fatalf("quiet round: %d walks but only %d+%d skipped",
			second.Walks, second.CacheSkipped, second.CleanSkipped)
	}
	if !second.Report.OK() || second.Report.Checked != first.Report.Checked {
		t.Fatalf("quiet round verdict drifted: %+v", second.Report)
	}

	// Fig. 2 misconfiguration: only r2's FIB changes, so the sync must ship
	// a delta for r2 and the distributed walks must see the new egress.
	if _, err := pn.UpdateConfig("r2", "lp 10", func(c *config.Router) {
		c.BGP.Neighbors[len(c.BGP.Neighbors)-1].LocalPref = 10
	}); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	third, err := p.VerifyDistributed(policies)
	if err != nil {
		t.Fatal(err)
	}
	if third.Report.OK() {
		t.Fatal("distributed verify missed the misconfiguration")
	}
	if third.Frames == 0 {
		t.Fatal("dirty round shipped no frames")
	}
}

// TestPipelineDistributedMatchesCentral asserts the distributed fleet and
// the central checker agree policy-for-policy, including after churn.
func TestPipelineDistributedMatchesCentral(t *testing.T) {
	pn, p := startPaper(t)
	defer p.Close()
	policies := []verify.Policy{
		{Kind: verify.Egress, Prefix: pn.P, Expect: "e2"},
		{Kind: verify.NoLoop, Prefix: pn.P},
	}
	check := func(stage string) {
		t.Helper()
		central := p.checker(p.Walker()).Check(policies)
		stats, err := p.VerifyDistributed(policies)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if central.OK() != stats.Report.OK() {
			t.Fatalf("%s: central OK=%v, distributed OK=%v",
				stage, central.OK(), stats.Report.OK())
		}
		if len(central.Violations) != len(stats.Report.Violations) {
			t.Fatalf("%s: central %d violations, distributed %d",
				stage, len(central.Violations), len(stats.Report.Violations))
		}
	}
	check("healthy")
	if _, err := pn.SetLinkUp("r2", "e2", false); err != nil {
		t.Fatal(err)
	}
	if err := pn.Run(); err != nil {
		t.Fatal(err)
	}
	check("link-down")
}
