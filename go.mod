module hbverify

go 1.22
