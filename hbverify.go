// Package hbverify integrates data-plane verification and control-plane
// repair into a (simulated) distributed control plane, reproducing
// "Integrating Verification and Repair into the Control Plane"
// (Gember-Jacobson, Raiciu, Vanbever — HotNets 2017).
//
// The library is organized as a pipeline over captured control-plane I/Os:
//
//	network.Network  — deterministic simulation of routers running real
//	                   BGP/OSPF/RIP/EIGRP implementations; every control
//	                   plane input and output is recorded.
//	hbr              — happens-before relationship inference from
//	                   observable I/O properties (§4.2).
//	hbg              — the happens-before graph: provenance and root
//	                   causes (§4.3, §6).
//	snapshot         — consistent data-plane snapshots gated on the HBG
//	                   (§5).
//	verify           — the data-plane verifier (loops, blackholes,
//	                   egress, waypoints).
//	repair           — root-cause rollback and the blocking baseline
//	                   (§6, §2).
//	dist             — distributed verification over TCP (§5).
//	ciscolog         — IOS-style log emit/parse, the §7 substrate.
//
// Pipeline ties these together for the common workflow: run a scenario,
// infer the HBG, verify policies over a consistent snapshot, and repair
// the root cause of any violation.
package hbverify

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"hbverify/internal/capture"
	"hbverify/internal/dataplane"
	"hbverify/internal/dist"
	"hbverify/internal/eqclass"
	"hbverify/internal/fib"
	"hbverify/internal/hbg"
	"hbverify/internal/hbr"
	"hbverify/internal/metrics"
	"hbverify/internal/netsim"
	"hbverify/internal/network"
	"hbverify/internal/repair"
	"hbverify/internal/serve"
	"hbverify/internal/snapshot"
	"hbverify/internal/verify"
	"hbverify/internal/whatif"
)

// Pipeline bundles the verification-and-repair loop over one network.
type Pipeline struct {
	Net *network.Network
	// Strategy infers happens-before relationships; defaults to incremental
	// rule matching (hbr.Rules wrapped in hbr.Incremental), which caches the
	// inferred graph across the append-only capture log.
	Strategy hbr.Strategy
	// Sources is the packet-injection set for data-plane checks.
	Sources []string
	// External marks routers outside the administrative domain for the
	// snapshot-consistency recursion (§5).
	External func(string) bool
	// Workers bounds the parallel verification walk pool (0 = GOMAXPROCS).
	Workers int
	// Metrics collects pipeline instrumentation (inference cache behaviour,
	// walk counts, latencies). Always non-nil for pipelines built with
	// NewPipeline.
	Metrics *metrics.Registry

	engine *repair.Engine
	// eqc incrementally tracks forwarding equivalence classes off the live
	// FIBs; walkCache keeps Verify's data-plane walks across calls, with
	// FIB deltas and link flips invalidating only the affected routers.
	eqc       *eqclass.Incremental
	walkCache *verify.WalkCache
	live      *verify.Checker

	// Lazily-built distributed verification fleet (§5), plus the set of
	// routers whose forwarding state changed since the last distributed
	// round — the view-delta and walk-reuse working set.
	distMu       sync.Mutex
	distCoord    *dist.Coordinator
	distNodes    map[string]*dist.Node
	distTeardown func()
	distDirty    map[string]struct{}
	distAllDirty bool
	// localRounds counts local-check rounds since the last full walk
	// round; VerifyLocalChecks relabels when it reaches localRelabelEvery.
	localRounds int
}

// NewPipeline builds a pipeline with the incremental rule-matching strategy
// and the delta verification path: every router FIB feeds the incremental
// equivalence classifier and the walk cache's per-router invalidation, link
// flips invalidate both endpoint routers, and repair rollback flushes both
// caches (the same rule PR 1 established for HBG inference — rollback
// rewrites history, so nothing derived from it survives).
func NewPipeline(n *network.Network, sources []string) *Pipeline {
	reg := metrics.NewRegistry()
	inc := hbr.NewIncremental(hbr.Rules{}, reg)
	p := &Pipeline{Net: n, Strategy: inc, Sources: sources, Metrics: reg}
	p.eqc = eqclass.NewIncremental(reg)
	p.walkCache = verify.NewWalkCache()
	p.distDirty = map[string]struct{}{}
	for _, r := range n.Routers() {
		name := r.Name
		p.eqc.Watch(name, r.FIB)
		r.FIB.OnChange(func(fib.Update) {
			p.walkCache.InvalidateRouter(name)
			p.noteDistDirty(name)
		})
	}
	n.OnLinkChange(func(a, b string, up bool) {
		// A link flip changes walker behaviour at both ends even when no
		// FIB entry moves (interface-up checks, statics over the link).
		p.walkCache.InvalidateRouter(a)
		p.walkCache.InvalidateRouter(b)
		p.noteDistDirty(a)
		p.noteDistDirty(b)
	})
	p.engine = repair.NewEngine(n, p.infer, sources)
	p.engine.Metrics = reg
	p.engine.Invalidate = func() {
		inc.Invalidate()
		p.eqc.Reset()
		p.walkCache.Flush()
		// Rollback rewrote history: every node view is suspect.
		p.distMu.Lock()
		p.distAllDirty = true
		p.distMu.Unlock()
	}
	return p
}

func (p *Pipeline) noteDistDirty(router string) {
	p.distMu.Lock()
	if p.distDirty != nil {
		p.distDirty[router] = struct{}{}
	}
	p.distMu.Unlock()
}

// infer applies the configured strategy with oracle fields stripped, so
// inference can never cheat via the simulator's ground-truth tags.
func (p *Pipeline) infer(ios []capture.IO) *hbg.Graph {
	return p.Strategy.Infer(capture.StripOracle(ios))
}

// Graph infers the happens-before graph over everything captured so far.
func (p *Pipeline) Graph() *hbg.Graph { return p.infer(p.Net.Log.Snapshot()) }

// GroundTruth builds the oracle graph from the simulator's causal tags,
// for accuracy evaluation only.
func (p *Pipeline) GroundTruth() *hbg.Graph { return hbg.FromGroundTruth(p.Net.Log.Snapshot()) }

// Accuracy scores the configured strategy against ground truth.
func (p *Pipeline) Accuracy() hbr.Metrics {
	return hbr.Evaluate(p.Graph(), p.Net.Log.Snapshot())
}

// Walker returns a data-plane walker over the live FIBs.
func (p *Pipeline) Walker() *dataplane.Walker {
	tables := map[string]*fib.Table{}
	for _, r := range p.Net.Routers() {
		tables[r.Name] = r.FIB
	}
	return dataplane.NewWalker(p.Net.Topo, dataplane.TableView(tables))
}

// checker builds a checker wired with the pipeline's worker bound and
// metrics registry.
func (p *Pipeline) checker(w *dataplane.Walker) *verify.Checker {
	c := verify.NewChecker(w, p.Sources)
	c.Workers = p.Workers
	c.Metrics = p.Metrics
	return c
}

// Verify checks policies against the live data plane. Pipelines built with
// NewPipeline verify through a persistent walk cache: repeat calls re-walk
// only the (source, header) pairs whose path crossed a router with FIB or
// link changes since the last call (Report.Cached counts the rest).
func (p *Pipeline) Verify(policies []verify.Policy) verify.Report {
	if p.walkCache == nil {
		return p.checker(p.Walker()).Check(policies)
	}
	if p.live == nil {
		p.live = p.checker(p.Walker())
		p.live.Cache = p.walkCache
	}
	p.live.Workers = p.Workers
	return p.live.Check(policies)
}

// VerifyDistributed checks policies through a per-router TCP fleet (§5)
// instead of the central walker. The fleet is built lazily on first call
// and kept across calls; subsequent rounds ship binary FIB/interface
// deltas only for the routers that changed (tracked from the same
// OnChange/OnLinkChange hooks that drive the caches), and the dispatch
// scheduler answers walks from the shared walk cache or the previous
// round's clean results before anything touches the wire. Metrics land in
// p.Metrics (dist.* counters, per-node latency timers) and surface through
// Summary().
func (p *Pipeline) VerifyDistributed(policies []verify.Policy) (dist.Stats, error) {
	p.distMu.Lock()
	if p.distCoord == nil {
		coord, nodes, teardown, err := dist.BuildFleet(p.Net, nil)
		if err != nil {
			p.distMu.Unlock()
			return dist.Stats{}, err
		}
		p.distCoord, p.distNodes, p.distTeardown = coord, nodes, teardown
		// The fleet was just built from the live views: nothing is dirty.
		p.distDirty = map[string]struct{}{}
		p.distAllDirty = false
	}
	var dirty []string
	if p.distAllDirty {
		dirty = nil // no delta information: sync and re-walk everything
	} else {
		dirty = make([]string, 0, len(p.distDirty))
		for r := range p.distDirty {
			dirty = append(dirty, r)
		}
		sort.Strings(dirty)
	}
	coord, nodes := p.distCoord, p.distNodes
	p.distMu.Unlock()

	views := map[string]dist.LocalView{}
	for _, r := range p.Net.Routers() {
		if dirty != nil && len(dirty) == 0 {
			break // nothing changed: no views needed
		}
		if dirty == nil || contains(dirty, r.Name) {
			if nodes[r.Name] != nil {
				views[r.Name] = dist.LocalViewOf(r)
			}
		}
	}
	if _, err := coord.SyncViews(nodes, views, dirty); err != nil {
		return dist.Stats{}, err
	}
	stats, err := coord.VerifyWith(nodes, policies, p.Sources, dist.VerifyOpts{
		Cache:   p.walkCache,
		Dirty:   dirty,
		Metrics: p.Metrics,
	})
	if err == nil {
		p.distMu.Lock()
		p.distDirty = map[string]struct{}{}
		p.distAllDirty = false
		p.distMu.Unlock()
	}
	return stats, err
}

// localRelabelEvery bounds how many local-check rounds may run between
// full walk rounds: VerifyLocalChecks re-walks everything and re-derives
// the distance labels once the counter hits it (the periodic full round
// of the hybrid loop).
const localRelabelEvery = 16

// VerifyLocalChecks runs the hybrid local-check loop over the same lazy
// fleet VerifyDistributed maintains. Most rounds ship sync-ID'd view
// deltas, let each node validate its own FIB changes against its label
// slice, and certify every quiet (policy, source) pair without a single
// walk frame — only violations or label staleness escalate to targeted
// walks for the affected forwarding classes. Every localRelabelEvery-th
// round (and the first) falls back to a full SyncViews + walk round and
// re-derives the distance labels, so label drift is bounded. Frames and
// Bytes in the returned stats cover the whole call: view sync, local
// reports, label pushes, and any escalated walks.
func (p *Pipeline) VerifyLocalChecks(policies []verify.Policy) (dist.Stats, error) {
	p.distMu.Lock()
	if p.distCoord == nil {
		coord, nodes, teardown, err := dist.BuildFleet(p.Net, nil)
		if err != nil {
			p.distMu.Unlock()
			return dist.Stats{}, err
		}
		p.distCoord, p.distNodes, p.distTeardown = coord, nodes, teardown
		p.distDirty = map[string]struct{}{}
		p.distAllDirty = false
	}
	var dirty []string
	if p.distAllDirty {
		dirty = nil // no delta information: sync and re-walk everything
	} else {
		dirty = make([]string, 0, len(p.distDirty))
		for r := range p.distDirty {
			dirty = append(dirty, r)
		}
		sort.Strings(dirty)
	}
	coord, nodes := p.distCoord, p.distNodes
	rounds := p.localRounds
	p.distMu.Unlock()

	views := map[string]dist.LocalView{}
	for _, r := range p.Net.Routers() {
		if dirty != nil && len(dirty) == 0 {
			break // nothing changed: no views needed
		}
		if dirty == nil || contains(dirty, r.Name) {
			if nodes[r.Name] != nil {
				views[r.Name] = dist.LocalViewOf(r)
			}
		}
	}

	classes := make([]netip.Prefix, 0, len(policies))
	seen := map[netip.Prefix]bool{}
	for _, pol := range policies {
		if !seen[pol.Prefix] {
			seen[pol.Prefix] = true
			classes = append(classes, pol.Prefix)
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].String() < classes[j].String() })

	opts := dist.VerifyOpts{Cache: p.walkCache, Dirty: dirty, Metrics: p.Metrics}
	relabel := coord.LabelEpoch() == 0 || rounds >= localRelabelEvery
	f0, b0 := coord.FleetWire(nodes)
	var stats dist.Stats
	var err error
	if relabel {
		if _, err = coord.SyncViews(nodes, views, dirty); err != nil {
			return dist.Stats{}, err
		}
		stats, err = coord.VerifyWith(nodes, policies, p.Sources, opts)
		if err != nil {
			return stats, err
		}
		if _, err = coord.Relabel(nodes, classes); err != nil {
			return stats, err
		}
		stats.Relabeled = true
	} else {
		if _, err = coord.SyncViewsChecked(nodes, views, dirty, 0); err != nil {
			return dist.Stats{}, err
		}
		stats, err = coord.VerifyLocal(nodes, policies, p.Sources, opts)
		if err != nil {
			return stats, err
		}
	}
	f1, b1 := coord.FleetWire(nodes)
	stats.Frames, stats.Bytes = int(f1-f0), int(b1-b0)

	p.distMu.Lock()
	p.distDirty = map[string]struct{}{}
	p.distAllDirty = false
	if relabel {
		p.localRounds = 1
	} else {
		p.localRounds++
	}
	p.distMu.Unlock()
	return stats, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Close tears down resources the pipeline holds — currently the
// distributed verification fleet, if one was built. The pipeline remains
// usable for local verification afterwards; a later VerifyDistributed
// builds a fresh fleet.
func (p *Pipeline) Close() error {
	p.distMu.Lock()
	teardown := p.distTeardown
	p.distCoord, p.distNodes, p.distTeardown = nil, nil, nil
	p.distMu.Unlock()
	if teardown != nil {
		teardown()
	}
	return nil
}

// Classes returns the current forwarding equivalence classes, maintained
// incrementally from FIB deltas (nil for pipelines not built with
// NewPipeline).
func (p *Pipeline) Classes() []eqclass.Class {
	if p.eqc == nil {
		return nil
	}
	return p.eqc.Classes()
}

// ServeEngine builds a verification query engine over the pipeline's live
// state: plans execute on the central walker, the plan cache is the
// pipeline's own walk cache (so FIB churn and link flips invalidate
// exactly the affected plans, and batch Verify calls share the walks), and
// query prefixes canonicalize through the incremental equivalence
// classifier. policies is the standing set what-if queries are judged
// against. serve.* metrics land in p.Metrics and surface via Summary().
// The caller owns the engine's lifecycle (Close it when done).
func (p *Pipeline) ServeEngine(policies []verify.Policy) *serve.Engine {
	return serve.New(serve.Config{
		Executor:  serve.WalkerExecutor{W: p.Walker()},
		Cache:     p.walkCache,
		Classes:   p.eqc,
		WhatIf:    &whatif.Engine{Seed: 1, Sources: p.Sources, Policies: policies},
		Blueprint: p.Net.Blueprint(),
		Metrics:   p.Metrics,
	})
}

// VerifySnapshot checks policies against a log-derived snapshot under a
// collection cut, first extending the cut until it is HBG-consistent (§5).
// It returns the report plus the consistency result.
func (p *Pipeline) VerifySnapshot(cut snapshot.Cut, policies []verify.Policy) (verify.Report, snapshot.Result) {
	collected, _, res := snapshot.ConsistentCollect(p.Net.Log.Snapshot(), cut, p.infer, p.External)
	fibs := snapshot.BuildFIBs(collected)
	w := dataplane.NewWalker(p.Net.Topo, dataplane.SnapshotView(fibs))
	return p.checker(w).Check(policies), res
}

// Detect verifies and, on violation, traces the problematic FIB update to
// its root causes via the inferred HBG.
func (p *Pipeline) Detect(policies []verify.Policy) *repair.Diagnosis {
	p.engine.Workers = p.Workers
	return p.engine.Detect(policies)
}

// DetectAndRepair additionally rolls back the root-cause configuration
// change. Run the network afterwards to let the repair converge.
func (p *Pipeline) DetectAndRepair(policies []verify.Policy) (*repair.Diagnosis, error) {
	p.engine.Workers = p.Workers
	return p.engine.DetectAndRepair(policies)
}

// RootCause traces an arbitrary captured I/O to its HBG leaf causes.
func (p *Pipeline) RootCause(ioID uint64) []capture.IO {
	return p.Graph().RootCauses(ioID)
}

// CompactLog evicts captured I/Os older than retain behind the newest
// event, bounding the pipeline's memory for always-on operation. The full
// retained window is folded into the incremental strategy first, so the
// evicted history survives as the cached baseline: Graph and RootCauses
// keep answering for retained events exactly as if the prefix were still
// present (evicted vertices' root causes fold into their in-window
// successors). Retain is clamped up to the strategy's look-back window
// plus skew slack — evicting closer than that could sever edges the next
// inference still needs. Returns the number of events evicted; 0 when the
// strategy cannot absorb history (only hbr.Incremental can) or nothing is
// old enough.
func (p *Pipeline) CompactLog(retain time.Duration) int {
	inc, ok := p.Strategy.(*hbr.Incremental)
	if !ok {
		return 0
	}
	snap := p.Net.Log.Snapshot()
	if len(snap) == 0 {
		return 0
	}
	if lb, ok := inc.Base.(hbr.Lookbacker); ok {
		slack := inc.SkewSlack
		if slack == 0 {
			slack = hbr.DefaultSkewSlack
		} else if slack < 0 {
			slack = 0
		}
		if min := lb.LookbackWindow() + 2*slack; retain < min {
			retain = min
		}
	}
	p.infer(snap) // fold the window before evicting from it
	floor := snap[len(snap)-1].Time - netsim.VirtualTime(retain)
	cut := 0
	for cut < len(snap) && snap[cut].Time < floor {
		cut++
	}
	if cut == 0 {
		return 0
	}
	inc.CompactBaseline(snap[cut].ID)
	return p.Net.Log.CompactBefore(snap[cut].ID)
}

// Summary renders a one-line pipeline state description, followed by the
// collected metrics when any instrument has fired.
func (p *Pipeline) Summary() string {
	s := fmt.Sprintf("%d routers, %d captured I/Os, strategy=%s",
		len(p.Net.Routers()), p.Net.Log.Len(), p.Strategy.Name())
	if m := p.Metrics.String(); m != "" {
		s += "\nmetrics: " + m
	}
	return s
}
